module P = Sh_prefix.Prefix_sums
module H = Sh_histogram.Histogram
module V = Sh_histogram.Vopt
module FW = Stream_histogram.Fixed_window
module AG = Stream_histogram.Agglomerative

let feed_fw fw data = Array.iter (FW.push fw) data
let feed_ag ag data = Array.iter (AG.push ag) data

(* Approximation-guarantee slack: the paper's accounting gives (1 + eps)
   with delta = eps / 2B; our per-level evaluation adds one extra (1 +
   delta) factor (documented in fixed_window.ml), so we assert against
   (1 + 2 eps) plus an absolute epsilon for float noise. *)
let within_guarantee ~eps ~opt err = err <= ((1.0 +. (2.0 *. eps)) *. opt) +. 1e-6

(* ------------------------------------------------- paper worked example *)

let test_paper_example_1 () =
  (* Stream 100,0,0,0,1,1,1,1 with delta = 1, B = 2 (Example 1). *)
  let fw = FW.create_with_delta ~window:8 ~buckets:2 ~epsilon:1.0 ~delta:1.0 in
  feed_fw fw [| 100.; 0.; 0.; 0.; 1.; 1.; 1.; 1. |];
  FW.refresh fw;
  (* Slide: drop the 100, insert a 1 -> data 0,0,0,1,1,1,1,1.  The paper
     works through CreateList[1,8,1] producing intervals (1,3),(4,6),(7,8)
     and the optimal solution (1,3),(4,8) with zero error. *)
  FW.push_and_refresh fw 1.0;
  Helpers.check_close "optimal error found" 0.0 (FW.current_error fw);
  let h = FW.current_histogram fw in
  Alcotest.(check int) "two buckets" 2 (H.bucket_count h);
  let b1 = H.find_bucket h 1 in
  Alcotest.(check int) "first bucket is [1..3]" 3 b1.H.hi;
  Helpers.check_close "first bucket value 0" 0.0 b1.H.value;
  Helpers.check_close "second bucket value 1" 1.0 (H.point_estimate h 4);
  (* The interval endpoints of the level-1 list should be 3, 6, 8 as in the
     paper's walkthrough. *)
  Alcotest.(check (array int)) "three level-1 intervals" [| 3 |]
    [| (FW.interval_counts fw).(0) |]

let test_paper_example_1_first_window () =
  (* Before sliding: 100,0,0,0,1,1,1,1.  Optimal 2-histogram isolates the
     100: buckets [1..1], [2..8]. *)
  let fw = FW.create_with_delta ~window:8 ~buckets:2 ~epsilon:1.0 ~delta:1.0 in
  feed_fw fw [| 100.; 0.; 0.; 0.; 1.; 1.; 1.; 1. |];
  let h = FW.current_histogram fw in
  let b1 = H.find_bucket h 1 in
  Alcotest.(check int) "singleton first bucket" 1 b1.H.hi;
  Helpers.check_close "value 100" 100.0 b1.H.value

(* --------------------------------------------------------- fixed window *)

let test_fw_accessors () =
  let fw = FW.create ~window:16 ~buckets:4 ~epsilon:0.25 in
  Alcotest.(check int) "window" 16 (FW.window fw);
  Alcotest.(check int) "buckets" 4 (FW.buckets fw);
  Helpers.check_close "epsilon" 0.25 (FW.epsilon fw);
  Alcotest.(check int) "empty" 0 (FW.length fw);
  FW.push fw 1.0;
  Alcotest.(check int) "one" 1 (FW.length fw)

let test_fw_validation () =
  Alcotest.check_raises "bad window" (Invalid_argument "Fixed_window.create: window must be >= 1")
    (fun () -> ignore (FW.create ~window:0 ~buckets:2 ~epsilon:0.1));
  Alcotest.check_raises "bad buckets" (Invalid_argument "Params: buckets must be >= 1") (fun () ->
      ignore (FW.create ~window:4 ~buckets:0 ~epsilon:0.1));
  Alcotest.check_raises "bad epsilon" (Invalid_argument "Params: epsilon must be > 0") (fun () ->
      ignore (FW.create ~window:4 ~buckets:2 ~epsilon:0.0));
  let fw = FW.create ~window:4 ~buckets:2 ~epsilon:0.1 in
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Fixed_window.current_histogram: empty window") (fun () ->
      ignore (FW.current_histogram fw))

let test_fw_partial_window () =
  (* Queries must work before the window fills. *)
  let fw = FW.create ~window:100 ~buckets:3 ~epsilon:0.1 in
  feed_fw fw [| 1.0; 1.0; 5.0 |];
  let h = FW.current_histogram fw in
  Alcotest.(check int) "covers 3 points" 3 h.H.n;
  Helpers.check_close "zero error with enough buckets" 0.0 (FW.current_error fw)

let test_fw_constant_stream () =
  let fw = FW.create ~window:32 ~buckets:2 ~epsilon:0.1 in
  for _ = 1 to 100 do
    FW.push fw 7.0
  done;
  Helpers.check_close "constant stream zero error" 0.0 (FW.current_error fw);
  let h = FW.current_histogram fw in
  Helpers.check_close "value 7" 7.0 (H.point_estimate h 10)

let prop_fw_guarantee =
  Helpers.qcheck_case ~count:40 ~name:"fixed-window SSE within (1+eps) of optimal"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:2 ~max_len:120 ~vmax:1000 () in
      let* b = int_range 1 6 in
      let* eps = oneofl [ 0.01; 0.1; 0.5; 1.0 ] in
      return (data, b, eps))
    (fun (data, b, eps) ->
      let n = Array.length data in
      let fw = FW.create ~window:n ~buckets:b ~epsilon:eps in
      feed_fw fw data;
      let p = P.make data in
      let opt = V.optimal_error p ~buckets:b in
      let err = FW.current_error fw in
      let sse = H.sse_against (FW.current_histogram fw) p in
      within_guarantee ~eps ~opt err && within_guarantee ~eps ~opt sse && err >= -1e-9)

let prop_fw_guarantee_while_sliding =
  Helpers.qcheck_case ~count:15 ~name:"guarantee holds at every slide position"
    QCheck2.Gen.(
      let* stream = array_size (int_range 40 120) (int_range 0 500) in
      let* b = int_range 2 4 in
      return (Array.map Float.of_int stream, b))
    (fun (stream, b) ->
      let w = 32 in
      let eps = 0.2 in
      let fw = FW.create ~window:w ~buckets:b ~epsilon:eps in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          FW.push_and_refresh fw v;
          if i >= w - 1 && i mod 7 = 0 then begin
            let p = P.of_sub stream ~pos:(i - w + 1) ~len:w in
            let opt = V.optimal_error p ~buckets:b in
            let sse = H.sse_against (FW.current_histogram fw) p in
            if not (within_guarantee ~eps ~opt sse) then ok := false
          end)
        stream;
      !ok)

let prop_fw_herror_brackets_exact =
  Helpers.qcheck_case ~count:25 ~name:"herror never under-reports the exact DP value"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:3 ~max_len:60 ~vmax:200 () in
      let* b = int_range 2 5 in
      return (data, b))
    (fun (data, b) ->
      let n = Array.length data in
      let fw = FW.create ~window:n ~buckets:b ~epsilon:0.1 in
      feed_fw fw data;
      let p = P.make data in
      let ok = ref true in
      for k = 1 to b do
        let exact = V.herror_row p ~buckets:k in
        for x = 1 to n do
          let approx = FW.herror fw ~k ~x in
          (* Never below the true optimum, and within the guarantee above. *)
          if approx < exact.(x) -. 1e-6 then ok := false;
          if not (within_guarantee ~eps:0.1 ~opt:exact.(x) approx) then ok := false
        done
      done;
      !ok)

let test_fw_bucket_count_bounded () =
  let fw = FW.create ~window:64 ~buckets:5 ~epsilon:0.1 in
  let rng = Helpers.rng ~seed:42 in
  for _ = 1 to 200 do
    FW.push fw (Float.of_int (Sh_util.Rng.int rng 1000))
  done;
  Alcotest.(check bool) "at most B buckets" true (H.bucket_count (FW.current_histogram fw) <= 5)

let test_fw_lazy_vs_eager () =
  (* push+refresh per point and lazy refresh at the end must agree on the
     final window state. *)
  let data = Array.init 80 (fun i -> Float.of_int ((i * 37) mod 101)) in
  let eager = FW.create ~window:32 ~buckets:4 ~epsilon:0.1 in
  let lazy_ = FW.create ~window:32 ~buckets:4 ~epsilon:0.1 in
  Array.iter (FW.push_and_refresh eager) data;
  Array.iter (FW.push lazy_) data;
  Helpers.check_close "same error" (FW.current_error eager) (FW.current_error lazy_);
  Alcotest.(check (array (float 1e-9)))
    "same histogram" (H.to_series (FW.current_histogram eager))
    (H.to_series (FW.current_histogram lazy_))

let test_fw_degenerate_sizes () =
  (* window = 1: every histogram is one exact point *)
  let fw = FW.create ~window:1 ~buckets:1 ~epsilon:0.5 in
  FW.push fw 3.0;
  FW.push fw 9.0;
  Helpers.check_close "zero error" 0.0 (FW.current_error fw);
  Helpers.check_close "latest point" 9.0 (H.point_estimate (FW.current_histogram fw) 1);
  (* B = 1: error is SQERROR(1, n) exactly *)
  let fw1 = FW.create ~window:8 ~buckets:1 ~epsilon:0.5 in
  let data = [| 1.0; 5.0; 2.0; 8.0 |] in
  Array.iter (FW.push fw1) data;
  Helpers.check_close "B=1 exact" (P.sqerror (P.make data) ~lo:1 ~hi:4) (FW.current_error fw1)

let test_fw_refresh_idempotent () =
  let fw = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  for i = 1 to 40 do
    FW.push fw (Float.of_int ((i * 7) mod 13))
  done;
  FW.refresh fw;
  let before = (FW.work_counters fw).FW.refreshes in
  FW.refresh fw;
  FW.refresh fw;
  Alcotest.(check int) "no redundant rebuilds" before (FW.work_counters fw).FW.refreshes;
  let e1 = FW.current_error fw in
  let e2 = FW.current_error fw in
  Helpers.check_close "stable answer" e1 e2

let test_fw_push_batch () =
  (* batched arrivals (paper footnote 2) are equivalent to pushing singly *)
  let data = Array.init 100 (fun i -> Float.of_int ((i * 31) mod 57)) in
  let single = FW.create ~window:40 ~buckets:4 ~epsilon:0.1 in
  let batched = FW.create ~window:40 ~buckets:4 ~epsilon:0.1 in
  Array.iter (FW.push single) data;
  FW.push_batch batched data;
  Helpers.check_close "same error" (FW.current_error single) (FW.current_error batched);
  Alcotest.(check (array (float 0.0)))
    "same histogram"
    (H.to_series (FW.current_histogram single))
    (H.to_series (FW.current_histogram batched))

let test_fw_work_counters () =
  let fw = FW.create ~window:32 ~buckets:3 ~epsilon:0.2 in
  let before = FW.work_counters fw in
  for i = 1 to 64 do
    FW.push_and_refresh fw (Float.of_int i)
  done;
  let after = FW.work_counters fw in
  Alcotest.(check bool) "evaluations grew" true
    (after.FW.herror_evaluations > before.FW.herror_evaluations);
  Alcotest.(check bool) "refreshes counted" true (after.FW.refreshes >= 64)

(* Golden regression for the registry migration and the SoA/memo rewrite:
   work_counters moved from private mutable int fields to Sh_obs
   registry-backed series, and these exact values were captured on the
   pre-migration implementation (network workload seed 5, 300 arrivals).
   The memo-off runs must reproduce them bit-for-bit — the SoA kernel with
   memoisation disabled executes the exact legacy probe sequence.  Any
   drift means the rewrite changed what gets counted or probed, not just
   how lists are stored. *)
let test_fw_work_counters_golden () =
  let window = 256 and buckets = 8 and epsilon = 0.2 in
  let module Wk = Sh_gen.Workloads in
  let module Source = Sh_gen.Source in
  let data = Source.take (Wk.network (Sh_util.Rng.create ~seed:5) Wk.default_network) 300 in
  let check_side tag expected c =
    let got =
      [
        c.FW.herror_evaluations; c.FW.cold_evaluations; c.FW.warm_evaluations;
        c.FW.intervals_built; c.FW.refreshes; c.FW.cold_refreshes; c.FW.warm_refreshes;
        c.FW.search_steps; c.FW.hint_hits; c.FW.hint_misses;
      ]
    in
    Alcotest.(check (list int)) tag expected got
  in
  let warm = FW.create ~window ~buckets ~epsilon in
  FW.set_memoisation warm false;
  Array.iter (FW.push_and_refresh warm) data;
  ignore (FW.current_histogram warm);
  check_side "warm counters match pre-migration golden run"
    [ 415066; 0; 415059; 174716; 300; 0; 300; 3115309; 170797; 2902 ]
    (FW.work_counters warm);
  let cold = FW.create ~window ~buckets ~epsilon in
  FW.set_memoisation cold false;
  Array.iter (fun v -> FW.push cold v; FW.refresh ~cold:true cold) data;
  ignore (FW.current_histogram cold);
  check_side "cold counters match pre-migration golden run"
    [ 1196240; 1196233; 0; 174716; 300; 300; 0; 9875868; 0; 0 ]
    (FW.work_counters cold);
  (* Memoisation changes only how much probing is executed, never what is
     logically evaluated or decided: the memoised run must report the same
     evaluations, intervals, refreshes, and hint outcomes, with strictly
     fewer executed search steps and a non-trivial hit rate. *)
  let memo = FW.create ~window ~buckets ~epsilon in
  Array.iter (FW.push_and_refresh memo) data;
  ignore (FW.current_histogram memo);
  let cm = FW.work_counters memo and cw = FW.work_counters warm in
  Alcotest.(check (list int)) "memoised run: same logical work as golden"
    [ cw.FW.herror_evaluations; cw.FW.cold_evaluations; cw.FW.warm_evaluations;
      cw.FW.intervals_built; cw.FW.refreshes; cw.FW.hint_hits; cw.FW.hint_misses ]
    [ cm.FW.herror_evaluations; cm.FW.cold_evaluations; cm.FW.warm_evaluations;
      cm.FW.intervals_built; cm.FW.refreshes; cm.FW.hint_hits; cm.FW.hint_misses ];
  Alcotest.(check bool) "memoised run executes fewer search steps" true
    (cm.FW.search_steps < cw.FW.search_steps);
  Alcotest.(check bool) "memo hits recorded" true (cm.FW.memo_hits > 0);
  Alcotest.(check bool) "memo hits bounded by probes" true
    (cm.FW.memo_hits <= cm.FW.memo_probes);
  Alcotest.(check bool) "scan steps are a subset of search steps" true
    (cm.FW.scan_steps <= cm.FW.search_steps && cm.FW.scan_steps > 0);
  Alcotest.(check bool) "memo-off run records no memo probes" true
    (cw.FW.memo_probes = 0 && cw.FW.memo_hits = 0);
  (* the same numbers must be visible through the shared registry: some
     fw.herror_evals series carries exactly the warm instance's total *)
  let found = ref false in
  Sh_obs.Registry.iter (fun m ->
      match m with
      | Sh_obs.Registry.Counter c
        when c.Sh_obs.Metric.c_name = "fw.herror_evals" && Sh_obs.Metric.value c = 415066 ->
        found := true
      | _ -> ());
  Alcotest.(check bool) "work_counters is a view over registry series" true !found

(* Steady-state sliding must reuse the interval lists' backing arrays:
   after a warm-up long enough to reach peak capacity, further slides may
   not grow any Soa column in the process (the lists moved from boxed-entry
   Vecs to struct-of-arrays stores; Soa.allocations is the growth gauge). *)
let test_fw_slide_reuses_memory () =
  let soa_allocs () = Sh_obs.Metric.gvalue Sh_util.Soa.allocations in
  let fw = FW.create ~window:64 ~buckets:4 ~epsilon:0.2 in
  for i = 1 to 256 do
    FW.push_and_refresh fw (Float.of_int ((i * 37) mod 101))
  done;
  let before = soa_allocs () in
  for i = 257 to 512 do
    FW.push_and_refresh fw (Float.of_int ((i * 37) mod 101))
  done;
  Alcotest.(check (float 0.0)) "no Soa growth across 256 steady-state slides" before
    (soa_allocs ())

(* The full arena claim: once warm, a push + warm refresh allocates ~zero
   minor-heap words.  The budget is pinned generously above the measured
   steady state (~0 words/push) but far below the pre-SoA kernel
   (~10^5-10^8 words/push) so any boxing creeping back into the hot path
   trips it immediately.  Telemetry spans stay disabled (their timing
   closures allocate by design and are off by default). *)
let test_fw_push_alloc_budget () =
  let fw = FW.create ~window:256 ~buckets:8 ~epsilon:0.2 in
  let v i = Float.of_int ((i * 37) mod 101) in
  for i = 1 to 1024 do
    FW.push_and_refresh fw (v i)
  done;
  let rounds = 256 in
  let w0 = Gc.minor_words () in
  for i = 1025 to 1024 + rounds do
    FW.push_and_refresh fw (v i)
  done;
  let per_push = (Gc.minor_words () -. w0) /. Float.of_int rounds in
  let budget = 64.0 in
  if per_push > budget then
    Alcotest.failf "steady-state allocation %.1f words/push exceeds budget %.1f"
      per_push budget

let test_fw_interval_count_bound () =
  (* The paper bounds each list by O((1/delta) log (HERROR)); sanity-check
     with a generous constant. *)
  let n = 256 and b = 4 in
  let eps = 0.5 in
  let fw = FW.create ~window:n ~buckets:b ~epsilon:eps in
  let rng = Helpers.rng ~seed:9 in
  for _ = 1 to n do
    FW.push fw (Float.of_int (Sh_util.Rng.int rng 1000))
  done;
  let delta = eps /. (2.0 *. Float.of_int b) in
  let bound =
    (* 3 * (1/delta) * log2(n * R^2) with R = 1000, plus slack *)
    int_of_float (3.0 /. delta *. (log (Float.of_int n *. 1e6) /. log 2.0)) + 16
  in
  Array.iter
    (fun c -> Alcotest.(check bool) "interval count bounded" true (c <= bound))
    (FW.interval_counts fw)

(* ------------------------------------------------ warm-start maintenance *)

(* The warm-start rebuild seeds its boundary searches from the previous
   lists but must land on exactly the boundaries a cold full-binary-search
   rebuild finds (HERROR is monotone in x, so the search result is seed
   independent).  Drive warm and cold twins through identical streams and
   compare the complete interval lists after every single push. *)
let prop_warm_equals_cold =
  Helpers.qcheck_case ~count:20 ~name:"warm-start lists identical to cold rebuild after every push"
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* workload = oneofl [ `Network; `Gauss_mix ] in
      let* window = oneofl [ 7; 16; 32 ] in
      let* b = int_range 2 6 in
      let* eps = oneofl [ 0.05; 0.1; 0.5 ] in
      return (seed, workload, window, b, eps))
    (fun (seed, workload, window, b, eps) ->
      let module Wk = Sh_gen.Workloads in
      let module Source = Sh_gen.Source in
      let rng = Sh_util.Rng.create ~seed in
      let source =
        match workload with
        | `Network -> Wk.network rng Wk.default_network
        | `Gauss_mix -> Wk.step_signal rng () (* Gaussian noise around mixed levels *)
      in
      let data = Source.take source (3 * window) in
      let warm = FW.create ~window ~buckets:b ~epsilon:eps in
      let cold = FW.create ~window ~buckets:b ~epsilon:eps in
      let ok = ref true in
      Array.iter
        (fun v ->
          FW.push warm v;
          FW.refresh warm;
          FW.push cold v;
          FW.refresh ~cold:true cold;
          for k = 1 to b - 1 do
            if FW.intervals warm ~k <> FW.intervals cold ~k then ok := false
          done;
          if FW.current_error warm <> FW.current_error cold then ok := false;
          if
            H.to_series (FW.current_histogram warm) <> H.to_series (FW.current_histogram cold)
          then ok := false)
        data;
      let wc = FW.work_counters warm and cc = FW.work_counters cold in
      (* modes charged to the right counters *)
      if wc.FW.cold_refreshes <> 0 || cc.FW.warm_refreshes <> 0 then ok := false;
      !ok)

(* The memo caches HERROR values within one refresh generation; hitting it
   must never change anything observable.  Drive three twins — memoised
   warm, unmemoised warm, cold — through identical streams over a grid of
   (window, B, eps) and compare complete interval lists, errors, and
   histograms after every push.  Bit-equality (<>, not approx) throughout:
   a memo hit returns the stored double verbatim, so even the floats must
   match exactly. *)
let prop_memo_equals_unmemo_equals_cold =
  Helpers.qcheck_case ~count:20
    ~name:"memoised == unmemoised == cold lists and answers after every push"
    QCheck2.Gen.(
      let* seed = int_range 0 10_000 in
      let* workload = oneofl [ `Network; `Gauss_mix ] in
      let* window = oneofl [ 7; 16; 32; 64 ] in
      let* b = int_range 2 6 in
      let* eps = oneofl [ 0.05; 0.1; 0.5 ] in
      return (seed, workload, window, b, eps))
    (fun (seed, workload, window, b, eps) ->
      let module Wk = Sh_gen.Workloads in
      let module Source = Sh_gen.Source in
      let rng = Sh_util.Rng.create ~seed in
      let source =
        match workload with
        | `Network -> Wk.network rng Wk.default_network
        | `Gauss_mix -> Wk.step_signal rng ()
      in
      let data = Source.take source (3 * window) in
      let memo = FW.create ~window ~buckets:b ~epsilon:eps in
      let plain = FW.create ~window ~buckets:b ~epsilon:eps in
      let cold = FW.create ~window ~buckets:b ~epsilon:eps in
      FW.set_memoisation plain false;
      let ok = ref true in
      Array.iter
        (fun v ->
          FW.push memo v;
          FW.refresh memo;
          FW.push plain v;
          FW.refresh plain;
          FW.push cold v;
          FW.refresh ~cold:true ~memo:true cold;
          for k = 1 to b - 1 do
            let im = FW.intervals memo ~k in
            if im <> FW.intervals plain ~k || im <> FW.intervals cold ~k then ok := false
          done;
          let em = FW.current_error memo in
          if em <> FW.current_error plain || em <> FW.current_error cold then ok := false;
          let hm = H.to_series (FW.current_histogram memo) in
          if
            hm <> H.to_series (FW.current_histogram plain)
            || hm <> H.to_series (FW.current_histogram cold)
          then ok := false;
          (* herror reads against the freshly built lists must agree too,
             including the memo-served repeats *)
          let x = FW.length memo in
          for k = 1 to b do
            let h1 = FW.herror memo ~k ~x in
            let h2 = FW.herror memo ~k ~x in
            if h1 <> h2 || h1 <> FW.herror plain ~k ~x || h1 <> FW.herror cold ~k ~x then
              ok := false
          done)
        data;
      (* the memoised twin must actually have exercised the memo *)
      let mc = FW.work_counters memo and pc = FW.work_counters plain in
      if window > 7 && mc.FW.memo_hits = 0 then ok := false;
      if pc.FW.memo_probes <> 0 then ok := false;
      !ok)

(* The quantified speedup of this PR: at the ISSUE's reference configuration
   the warm-start rebuild must spend at least 3x fewer HERROR evaluations
   per arrival than a cold rebuild of the same window. *)
let test_fw_warm_speedup () =
  let window = 4096 and buckets = 16 and epsilon = 0.1 in
  let pushes = 3 in
  let module Wk = Sh_gen.Workloads in
  let module Source = Sh_gen.Source in
  let data =
    Source.take (Wk.network (Sh_util.Rng.create ~seed:7) Wk.default_network) (window + pushes)
  in
  let per_push ~cold =
    let fw = FW.create ~window ~buckets ~epsilon in
    for i = 0 to window - 1 do
      FW.push fw data.(i)
    done;
    FW.refresh fw;
    let before = (FW.work_counters fw).FW.herror_evaluations in
    for i = window to window + pushes - 1 do
      FW.push fw data.(i);
      FW.refresh ~cold fw
    done;
    let fw_counters = FW.work_counters fw in
    (fw_counters.FW.herror_evaluations - before, fw_counters)
  in
  let warm_evals, warm_c = per_push ~cold:false in
  let cold_evals, _ = per_push ~cold:true in
  Alcotest.(check bool)
    (Printf.sprintf "herror evals reduced >= 3x (cold %d vs warm %d per %d pushes)" cold_evals
       warm_evals pushes)
    true
    (cold_evals >= 3 * warm_evals);
  (* the warm rebuilds overwhelmingly land exactly on the hinted boundary *)
  Alcotest.(check bool) "hints mostly hit" true (warm_c.FW.hint_hits > warm_c.FW.hint_misses)

(* ------------------------------------------------------- refresh policy *)

let test_fw_policy_eager () =
  let fw = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  FW.set_refresh_policy fw Stream_histogram.Params.Eager;
  Alcotest.(check bool) "policy readable" true
    (FW.refresh_policy fw = Stream_histogram.Params.Eager);
  for i = 1 to 20 do
    FW.push fw (Float.of_int ((i * 7) mod 13))
  done;
  Alcotest.(check int) "one rebuild per arrival" 20 (FW.work_counters fw).FW.refreshes

let test_fw_policy_every () =
  let fw = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  FW.set_refresh_policy fw (Stream_histogram.Params.Every 4);
  for i = 1 to 10 do
    FW.push fw (Float.of_int ((i * 7) mod 13))
  done;
  (* rebuilds at arrivals 4 and 8 only *)
  Alcotest.(check int) "amortised rebuilds" 2 (FW.work_counters fw).FW.refreshes;
  (* a query still forces a rebuild of the pending tail *)
  ignore (FW.current_error fw);
  Alcotest.(check int) "query refreshes the tail" 3 (FW.work_counters fw).FW.refreshes

let test_fw_policy_matches_lazy () =
  (* All policies maintain the same window, so queries agree exactly. *)
  let data = Array.init 90 (fun i -> Float.of_int ((i * 41) mod 67)) in
  let mk policy =
    let fw = FW.create ~window:24 ~buckets:4 ~epsilon:0.1 in
    FW.set_refresh_policy fw policy;
    Array.iter (FW.push fw) data;
    fw
  in
  let reference = mk Stream_histogram.Params.Lazy in
  List.iter
    (fun policy ->
      let fw = mk policy in
      Helpers.check_close "same error" (FW.current_error reference) (FW.current_error fw);
      Alcotest.(check (array (float 0.0)))
        "same histogram"
        (H.to_series (FW.current_histogram reference))
        (H.to_series (FW.current_histogram fw)))
    [ Stream_histogram.Params.Eager; Stream_histogram.Params.Every 5 ]

let test_fw_policy_validation () =
  let fw = FW.create ~window:8 ~buckets:2 ~epsilon:0.1 in
  Alcotest.check_raises "Every 0 rejected" (Invalid_argument "Params: Every period must be >= 1")
    (fun () -> FW.set_refresh_policy fw (Stream_histogram.Params.Every 0))

(* every:1 is the boundary the CLI help used to leave ambiguous: k = 1 is
   valid (set_refresh_policy and policy_of_string agree) and degenerates to
   the Eager cadence — one rebuild per arrival. *)
let test_fw_policy_every_one () =
  let module P = Stream_histogram.Params in
  Alcotest.(check bool) "every:1 parses" true (P.policy_of_string "every:1" = Some (P.Every 1));
  Alcotest.(check bool) "every:0 rejected by parser" true (P.policy_of_string "every:0" = None);
  let every1 = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  FW.set_refresh_policy every1 (P.Every 1);
  let eager = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  FW.set_refresh_policy eager P.Eager;
  for i = 1 to 20 do
    let v = Float.of_int ((i * 7) mod 13) in
    FW.push every1 v;
    FW.push eager v
  done;
  Alcotest.(check int) "every:1 rebuilds per arrival" 20 (FW.work_counters every1).FW.refreshes;
  Alcotest.(check int) "same cadence as eager"
    (FW.work_counters eager).FW.refreshes
    (FW.work_counters every1).FW.refreshes

let test_fw_push_slice () =
  let data = Array.init 100 (fun i -> Float.of_int ((i * 31) mod 57)) in
  let whole = FW.create ~window:40 ~buckets:4 ~epsilon:0.1 in
  let sliced = FW.create ~window:40 ~buckets:4 ~epsilon:0.1 in
  FW.push_many whole data;
  FW.push_slice sliced data ~pos:0 ~len:30;
  FW.push_slice sliced data ~pos:30 ~len:70;
  Helpers.check_close "same error" (FW.current_error whole) (FW.current_error sliced);
  Alcotest.(check (array (float 0.0)))
    "same histogram"
    (H.to_series (FW.current_histogram whole))
    (H.to_series (FW.current_histogram sliced));
  Alcotest.check_raises "oob slice" (Invalid_argument "Fixed_window.push_slice: slice out of bounds")
    (fun () -> FW.push_slice sliced data ~pos:90 ~len:20);
  Alcotest.check_raises "non-finite rejected"
    (Invalid_argument "Fixed_window.push_slice: non-finite value") (fun () ->
      FW.push_slice sliced [| 1.0; Float.nan |] ~pos:0 ~len:2)

let test_best_split_counted () =
  (* current_histogram's split recovery performs candidate evaluations; they
     must show up in work_counters like any other herror evaluation. *)
  let fw = FW.create ~window:32 ~buckets:4 ~epsilon:0.2 in
  for i = 1 to 32 do
    FW.push fw (Float.of_int ((i * 29) mod 17))
  done;
  FW.refresh fw;
  let before = (FW.work_counters fw).FW.herror_evaluations in
  ignore (FW.current_histogram fw);
  let after = (FW.work_counters fw).FW.herror_evaluations in
  Alcotest.(check bool) "best_split evaluations counted" true (after > before)

(* -------------------------------------------------------- agglomerative *)

let test_ag_accessors () =
  let ag = AG.create ~buckets:4 ~epsilon:0.25 in
  Alcotest.(check int) "buckets" 4 (AG.buckets ag);
  Helpers.check_close "epsilon" 0.25 (AG.epsilon ag);
  Alcotest.(check int) "count" 0 (AG.count ag);
  Helpers.check_close "empty error" 0.0 (AG.current_error ag);
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Agglomerative.current_histogram: empty stream") (fun () ->
      ignore (AG.current_histogram ag))

let test_ag_single_bucket () =
  let ag = AG.create ~buckets:1 ~epsilon:0.1 in
  feed_ag ag [| 1.0; 3.0 |];
  Helpers.check_close "B=1 error" 2.0 (AG.current_error ag);
  let h = AG.current_histogram ag in
  Alcotest.(check int) "one bucket" 1 (H.bucket_count h);
  Helpers.check_close "mean" 2.0 (H.point_estimate h 1)

let test_ag_step_data_zero_error () =
  let ag = AG.create ~buckets:3 ~epsilon:0.1 in
  let data = Array.concat [ Array.make 20 1.0; Array.make 20 5.0; Array.make 20 2.0 ] in
  feed_ag ag data;
  Helpers.check_close "exact on 3-step data" 0.0 (AG.current_error ag);
  let h = AG.current_histogram ag in
  Helpers.check_close "reconstruction exact" 0.0 (H.sse_against h (P.make data))

let prop_ag_guarantee =
  Helpers.qcheck_case ~count:40 ~name:"agglomerative SSE within (1+eps) of optimal"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:2 ~max_len:120 ~vmax:1000 () in
      let* b = int_range 1 6 in
      let* eps = oneofl [ 0.01; 0.1; 0.5; 1.0 ] in
      return (data, b, eps))
    (fun (data, b, eps) ->
      let ag = AG.create ~buckets:b ~epsilon:eps in
      feed_ag ag data;
      let p = P.make data in
      let opt = V.optimal_error p ~buckets:b in
      let err = AG.current_error ag in
      let sse = H.sse_against (AG.current_histogram ag) p in
      within_guarantee ~eps ~opt err && within_guarantee ~eps ~opt sse)

let prop_ag_guarantee_every_prefix =
  Helpers.qcheck_case ~count:10 ~name:"agglomerative guarantee holds at every prefix"
    QCheck2.Gen.(
      let* stream = array_size (int_range 10 80) (int_range 0 300) in
      return (Array.map Float.of_int stream))
    (fun stream ->
      let b = 3 and eps = 0.2 in
      let ag = AG.create ~buckets:b ~epsilon:eps in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          AG.push ag v;
          if i mod 5 = 0 then begin
            let p = P.of_sub stream ~pos:0 ~len:(i + 1) in
            let opt = V.optimal_error p ~buckets:b in
            if not (within_guarantee ~eps ~opt (AG.current_error ag)) then ok := false
          end)
        stream;
      !ok)

let test_ag_space_sublinear () =
  (* Space must stay polylogarithmic in the stream length: push 50k points
     and check the queue total against the paper's O((B^2/eps) log n) with
     a generous constant. *)
  let b = 5 and eps = 0.2 in
  let ag = AG.create ~buckets:b ~epsilon:eps in
  let rng = Helpers.rng ~seed:4 in
  let n = 50_000 in
  for _ = 1 to n do
    AG.push ag (Float.of_int (Sh_util.Rng.int rng 10_000))
  done;
  let delta = eps /. (2.0 *. Float.of_int b) in
  let per_queue = 3.0 /. delta *. (log (Float.of_int n *. 1e8) /. log 2.0) in
  let bound = int_of_float (per_queue *. Float.of_int (b - 1)) + 64 in
  Alcotest.(check bool) "space within paper bound" true (AG.space_in_entries ag <= bound);
  Alcotest.(check int) "interval_counts consistent" (AG.space_in_entries ag)
    (Array.fold_left ( + ) 0 (AG.interval_counts ag))

let test_ag_monotone_error () =
  (* HERROR[N, B] never decreases as the stream grows. *)
  let ag = AG.create ~buckets:2 ~epsilon:0.1 in
  let rng = Helpers.rng ~seed:5 in
  let prev = ref 0.0 in
  let ok = ref true in
  for _ = 1 to 500 do
    AG.push ag (Float.of_int (Sh_util.Rng.int rng 100));
    let e = AG.current_error ag in
    if e < !prev -. 1e-6 then ok := false;
    prev := e
  done;
  Alcotest.(check bool) "monotone non-decreasing" true !ok

(* --------------------------------------------------------- exact window *)

module EW = Stream_histogram.Exact_window

let test_ew_matches_vopt_on_window () =
  let data = Array.init 120 (fun i -> Float.of_int ((i * 53) mod 97)) in
  let ew = EW.create ~window:48 ~buckets:5 ~epsilon:0.0 in
  Array.iter (EW.push ew) data;
  let window = Array.sub data (120 - 48) 48 in
  let p = P.make window in
  Helpers.check_close "optimal error of window" (V.optimal_error p ~buckets:5)
    (EW.current_error ew);
  Helpers.check_close "histogram achieves it" (V.optimal_error p ~buckets:5)
    (H.sse_against (EW.current_histogram ew) p)

let test_ew_is_lower_bound_for_fw () =
  let data = Array.init 200 (fun i -> Float.of_int ((i * 17) mod 211)) in
  let ew = EW.create ~window:64 ~buckets:4 ~epsilon:0.0 in
  let fw = FW.create ~window:64 ~buckets:4 ~epsilon:0.1 in
  Array.iter (fun v -> EW.push ew v; FW.push fw v) data;
  Alcotest.(check bool) "exact <= approximate" true
    (EW.current_error ew <= FW.current_error fw +. 1e-6)

let test_ew_partial_and_empty () =
  let ew = EW.create ~window:10 ~buckets:2 ~epsilon:0.0 in
  Alcotest.check_raises "empty" (Invalid_argument "Exact_window.current_histogram: empty window")
    (fun () -> ignore (EW.current_error ew));
  EW.push ew 5.0;
  Alcotest.(check int) "length" 1 (EW.length ew);
  Helpers.check_close "single point" 0.0 (EW.current_error ew)

(* ------------------------------------------------------ input validation *)

let test_non_finite_rejected () =
  let fw = FW.create ~window:4 ~buckets:2 ~epsilon:0.1 in
  FW.push fw 1.0;
  FW.push fw 2.0;
  let err_before = FW.current_error fw in
  let hist_before = H.to_series (FW.current_histogram fw) in
  List.iter
    (fun (label, v) ->
      Alcotest.check_raises label (Invalid_argument "Fixed_window.push: non-finite value")
        (fun () -> FW.push fw v))
    [ ("fw nan", Float.nan); ("fw inf", Float.infinity); ("fw -inf", Float.neg_infinity) ];
  (* rejection must happen before any state is touched: the window, its
     error, and its histogram are exactly as they were *)
  Alcotest.(check int) "fw length unchanged" 2 (FW.length fw);
  Helpers.check_close "fw error unchanged" err_before (FW.current_error fw);
  Alcotest.(check (array (float 0.0)))
    "fw histogram unchanged" hist_before
    (H.to_series (FW.current_histogram fw));
  let ag = AG.create ~buckets:2 ~epsilon:0.1 in
  AG.push ag 3.0;
  List.iter
    (fun (label, v) ->
      Alcotest.check_raises label (Invalid_argument "Agglomerative.push: non-finite value")
        (fun () -> AG.push ag v))
    [ ("ag nan", Float.nan); ("ag inf", Float.infinity); ("ag -inf", Float.neg_infinity) ];
  Alcotest.(check int) "ag count unchanged" 1 (AG.count ag);
  let ew = EW.create ~window:4 ~buckets:2 ~epsilon:0.0 in
  EW.push ew 4.0;
  List.iter
    (fun (label, v) ->
      Alcotest.check_raises label (Invalid_argument "Exact_window.push: non-finite value")
        (fun () -> EW.push ew v))
    [ ("ew nan", Float.nan); ("ew inf", Float.infinity); ("ew -inf", Float.neg_infinity) ];
  Alcotest.(check int) "ew length unchanged" 1 (EW.length ew)

(* ------------------------------------------------- cross-algorithm ties *)

let prop_fw_and_ag_agree_on_full_window =
  Helpers.qcheck_case ~count:25 ~name:"fixed-window and agglomerative agree when window = stream"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:2 ~max_len:80 ~vmax:500 () in
      let* b = int_range 1 5 in
      return (data, b))
    (fun (data, b) ->
      (* Both answer the same question on identical inputs, so both must
         land within the same guarantee band of the same optimum. *)
      let eps = 0.1 in
      let n = Array.length data in
      let fw = FW.create ~window:n ~buckets:b ~epsilon:eps in
      let ag = AG.create ~buckets:b ~epsilon:eps in
      feed_fw fw data;
      feed_ag ag data;
      let opt = V.optimal_error (P.make data) ~buckets:b in
      within_guarantee ~eps ~opt (FW.current_error fw)
      && within_guarantee ~eps ~opt (AG.current_error ag))

let () =
  Alcotest.run "stream_histogram"
    [
      ( "paper_example",
        [
          Alcotest.test_case "example 1 after slide" `Quick test_paper_example_1;
          Alcotest.test_case "example 1 first window" `Quick test_paper_example_1_first_window;
        ] );
      ( "fixed_window",
        [
          Alcotest.test_case "accessors" `Quick test_fw_accessors;
          Alcotest.test_case "validation" `Quick test_fw_validation;
          Alcotest.test_case "partial window" `Quick test_fw_partial_window;
          Alcotest.test_case "constant stream" `Quick test_fw_constant_stream;
          Alcotest.test_case "bucket count" `Quick test_fw_bucket_count_bounded;
          Alcotest.test_case "lazy vs eager" `Quick test_fw_lazy_vs_eager;
          Alcotest.test_case "push batch" `Quick test_fw_push_batch;
          Alcotest.test_case "degenerate sizes" `Quick test_fw_degenerate_sizes;
          Alcotest.test_case "refresh idempotent" `Quick test_fw_refresh_idempotent;
          Alcotest.test_case "work counters" `Quick test_fw_work_counters;
          Alcotest.test_case "work counters golden" `Quick test_fw_work_counters_golden;
          Alcotest.test_case "slide reuses memory" `Quick test_fw_slide_reuses_memory;
          Alcotest.test_case "push allocation budget" `Quick test_fw_push_alloc_budget;
          Alcotest.test_case "interval bound" `Quick test_fw_interval_count_bound;
          prop_fw_guarantee;
          prop_fw_guarantee_while_sliding;
          prop_fw_herror_brackets_exact;
        ] );
      ( "warm_start",
        [
          prop_warm_equals_cold;
          prop_memo_equals_unmemo_equals_cold;
          Alcotest.test_case "3x fewer herror evals" `Quick test_fw_warm_speedup;
          Alcotest.test_case "policy eager" `Quick test_fw_policy_eager;
          Alcotest.test_case "policy every" `Quick test_fw_policy_every;
          Alcotest.test_case "policy every:1 boundary" `Quick test_fw_policy_every_one;
          Alcotest.test_case "push_slice" `Quick test_fw_push_slice;
          Alcotest.test_case "policies agree" `Quick test_fw_policy_matches_lazy;
          Alcotest.test_case "policy validation" `Quick test_fw_policy_validation;
          Alcotest.test_case "best_split counted" `Quick test_best_split_counted;
        ] );
      ( "agglomerative",
        [
          Alcotest.test_case "accessors" `Quick test_ag_accessors;
          Alcotest.test_case "single bucket" `Quick test_ag_single_bucket;
          Alcotest.test_case "step data" `Quick test_ag_step_data_zero_error;
          Alcotest.test_case "space sublinear" `Quick test_ag_space_sublinear;
          Alcotest.test_case "monotone error" `Quick test_ag_monotone_error;
          prop_ag_guarantee;
          prop_ag_guarantee_every_prefix;
        ] );
      ( "exact_window",
        [
          Alcotest.test_case "matches vopt" `Quick test_ew_matches_vopt_on_window;
          Alcotest.test_case "lower bound for fw" `Quick test_ew_is_lower_bound_for_fw;
          Alcotest.test_case "partial and empty" `Quick test_ew_partial_and_empty;
          Alcotest.test_case "non-finite rejected" `Quick test_non_finite_rejected;
        ] );
      ("cross", [ prop_fw_and_ag_agree_on_full_window ]);
    ]
