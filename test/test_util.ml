module Rng = Sh_util.Rng
module Stats = Sh_util.Stats
module Metrics = Sh_util.Metrics
module Heap = Sh_util.Heap
module Vec = Sh_util.Vec
module Soa = Sh_util.Soa
module Intmemo = Sh_util.Intmemo

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_rng_copy () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy tracks original" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.split a in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr equal
  done;
  Alcotest.(check bool) "split streams differ" true (!equal < 4)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_covers () =
  let r = Rng.create ~seed:4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int r 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:6 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r ~mean:3.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean close" true (Float.abs (Stats.mean xs -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev close" true (Float.abs (Stats.stddev xs -. 2.0) < 0.1)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:8 in
  let xs = Array.init 20000 (fun _ -> Rng.exponential r ~rate:0.5) in
  Alcotest.(check bool) "mean close to 1/rate" true (Float.abs (Stats.mean xs -. 2.0) < 0.1);
  Alcotest.(check bool) "non-negative" true (Array.for_all (fun x -> x >= 0.0) xs)

let test_rng_pareto_scale () =
  let r = Rng.create ~seed:9 in
  let xs = Array.init 1000 (fun _ -> Rng.pareto r ~shape:2.0 ~scale:5.0) in
  Alcotest.(check bool) "at least scale" true (Array.for_all (fun x -> x >= 5.0) xs)

let test_rng_zipf_bounds () =
  let r = Rng.create ~seed:10 in
  for _ = 1 to 1000 do
    let v = Rng.zipf r ~n:50 ~skew:1.2 in
    Alcotest.(check bool) "rank in [1,n]" true (v >= 1 && v <= 50)
  done

let test_rng_zipf_skew () =
  let r = Rng.create ~seed:11 in
  let counts = Array.make 51 0 in
  for _ = 1 to 20000 do
    let v = Rng.zipf r ~n:50 ~skew:1.5 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 10" true (counts.(1) > 3 * counts.(10));
  Alcotest.(check bool) "rank 1 most frequent" true
    (Array.for_all (fun c -> c <= counts.(1)) (Array.sub counts 2 49))

let test_rng_zipf_n1 () =
  let r = Rng.create ~seed:12 in
  Alcotest.(check int) "n=1 gives 1" 1 (Rng.zipf r ~n:1 ~skew:1.0)

(* ---------------------------------------------------------------- Stats *)

let test_stats_sum_empty () = Helpers.check_close "empty sum" 0.0 (Stats.sum [||])

let test_stats_sum_kahan () =
  (* 1e16 + 1 repeated: naive summation loses the ones. *)
  let xs = Array.init 11 (fun i -> if i = 0 then 1e16 else 1.0) in
  Helpers.check_close "compensated" (1e16 +. 10.0) (Stats.sum xs)

let test_stats_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Helpers.check_close "mean" 5.0 (Stats.mean xs);
  Helpers.check_close "variance" 4.0 (Stats.variance xs);
  Helpers.check_close "stddev" 2.0 (Stats.stddev xs)

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0; 2.0 |] in
  Helpers.check_close "min" (-1.0) lo;
  Helpers.check_close "max" 7.0 hi

let test_stats_quantile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Helpers.check_close "median" 3.0 (Stats.median xs);
  Helpers.check_close "q0" 1.0 (Stats.quantile xs 0.0);
  Helpers.check_close "q1" 5.0 (Stats.quantile xs 1.0);
  Helpers.check_close "q interpolated" 1.5 (Stats.quantile xs 0.125)

let test_stats_histogram_counts () =
  let xs = [| 0.0; 0.5; 1.0; 2.5; 10.0; -5.0 |] in
  let counts = Stats.histogram_counts xs ~bins:4 ~lo:0.0 ~hi:4.0 in
  Alcotest.(check (array int)) "counts with clamping" [| 3; 1; 1; 1 |] counts

let quantile_matches_sorted =
  Helpers.qcheck_case ~name:"quantile 0/1 are min/max"
    (Helpers.gen_data ())
    (fun data ->
      let lo, hi = Stats.min_max data in
      Helpers.close (Stats.quantile data 0.0) lo && Helpers.close (Stats.quantile data 1.0) hi)

(* -------------------------------------------------------------- Metrics *)

let test_metrics_exact () =
  let s = Metrics.summarize ~estimates:[| 1.0; 2.0 |] ~truths:[| 1.0; 2.0 |] in
  Helpers.check_close "mae" 0.0 s.Metrics.mae;
  Helpers.check_close "rmse" 0.0 s.Metrics.rmse;
  Helpers.check_close "max" 0.0 s.Metrics.max_abs

let test_metrics_known () =
  let s = Metrics.summarize ~estimates:[| 3.0; 0.0 |] ~truths:[| 1.0; 4.0 |] in
  Helpers.check_close "mae" 3.0 s.Metrics.mae;
  Helpers.check_close "rmse" (sqrt (((2.0 *. 2.0) +. (4.0 *. 4.0)) /. 2.0)) s.Metrics.rmse;
  Helpers.check_close "max" 4.0 s.Metrics.max_abs;
  Helpers.check_close "rel" ((2.0 +. 1.0) /. 2.0) s.Metrics.mean_rel

let test_metrics_sse () =
  Helpers.check_close "sse" 5.0 (Metrics.sse [| 1.0; 2.0 |] [| 2.0; 4.0 |])

let test_metrics_validation () =
  Alcotest.check_raises "length mismatch" (Invalid_argument "Metrics.sse: arrays must be equal-length")
    (fun () -> ignore (Metrics.sse [| 1.0 |] [| 1.0; 2.0 |]))

(* ----------------------------------------------------------------- Heap *)

let heap_sorts =
  Helpers.qcheck_case ~name:"heap pops in sorted order"
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

let test_heap_basics () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.add h 5;
  Heap.add h 1;
  Heap.add h 3;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "pop order" 1 (Heap.pop_exn h);
  Alcotest.(check int) "pop order" 3 (Heap.pop_exn h);
  Alcotest.(check int) "pop order" 5 (Heap.pop_exn h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

(* ------------------------------------------------------------------ Vec *)

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Vec.get v 0);
  Alcotest.(check int) "fold" (4950 - 0 + 7) (Vec.fold ( + ) 0 v);
  Alcotest.(check int) "to_array" 100 (Array.length (Vec.to_array v));
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v);
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 0))

let vec_matches_list =
  Helpers.qcheck_case ~name:"vec to_array equals pushed list"
    QCheck2.Gen.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Array.to_list (Vec.to_array v) = xs)

let test_vec_allocation_gauge () =
  let allocs () = Sh_obs.Metric.gvalue Vec.allocations in
  let v = Vec.create () in
  let before = allocs () in
  for i = 1 to 100 do
    Vec.push v i
  done;
  (* capacities 8, 16, 32, 64, 128 *)
  Alcotest.(check (float 0.0)) "growths counted" (before +. 5.0) (allocs ());
  (* clear keeps the backing array: refilling to the same length is free *)
  Vec.clear v;
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check (float 0.0)) "clear + refill reuses capacity" (before +. 5.0) (allocs ())

(* ------------------------------------------------------------------ Soa *)

let test_soa_basics () =
  let s = Soa.create ~fcols:2 ~icols:2 () in
  Alcotest.(check bool) "empty" true (Soa.is_empty s);
  Alcotest.(check int) "float cols" 2 (Soa.float_cols s);
  Alcotest.(check int) "int cols" 2 (Soa.int_cols s);
  for i = 0 to 99 do
    let r = Soa.add_row s in
    Alcotest.(check int) "row index" i r;
    Soa.set_i s ~col:0 r (i * 3);
    Soa.set_i s ~col:1 r (i * 5);
    Soa.set_f s ~col:0 r (Float.of_int (i * 7));
    Soa.set_f s ~col:1 r (Float.of_int (i * 11))
  done;
  Alcotest.(check int) "length" 100 (Soa.length s);
  (* column integrity: growth must preserve every column in lockstep *)
  for i = 0 to 99 do
    Alcotest.(check int) "icol 0" (i * 3) (Soa.get_i s ~col:0 i);
    Alcotest.(check int) "icol 1" (i * 5) (Soa.get_i s ~col:1 i);
    Alcotest.(check (float 0.0)) "fcol 0" (Float.of_int (i * 7)) (Soa.get_f s ~col:0 i);
    Alcotest.(check (float 0.0)) "fcol 1" (Float.of_int (i * 11)) (Soa.get_f s ~col:1 i)
  done;
  Alcotest.(check bool) "capacity >= length" true (Soa.capacity s >= 100);
  Soa.clear s;
  Alcotest.(check bool) "cleared" true (Soa.is_empty s);
  Alcotest.check_raises "get oob" (Invalid_argument "Soa: row out of bounds") (fun () ->
      ignore (Soa.get_i s ~col:0 0));
  Alcotest.check_raises "no columns" (Invalid_argument "Soa.create: need at least one column")
    (fun () -> ignore (Soa.create ~fcols:0 ~icols:0 ()))

let test_soa_allocation_gauge () =
  let allocs () = Sh_obs.Metric.gvalue Soa.allocations in
  let s = Soa.create ~fcols:1 ~icols:1 () in
  let before = allocs () in
  for i = 1 to 100 do
    let r = Soa.add_row s in
    Soa.set_i s ~col:0 r i;
    Soa.set_f s ~col:0 r (Float.of_int i)
  done;
  (* capacities 8, 16, 32, 64, 128 *)
  Alcotest.(check (float 0.0)) "growths counted" (before +. 5.0) (allocs ());
  Soa.clear s;
  for _ = 1 to 100 do
    ignore (Soa.add_row s)
  done;
  Alcotest.(check (float 0.0)) "clear + refill reuses capacity" (before +. 5.0) (allocs ())

let test_soa_bsearch_ge () =
  let s = Soa.create ~fcols:0 ~icols:1 () in
  List.iter
    (fun x ->
      let r = Soa.add_row s in
      Soa.set_i s ~col:0 r x)
    [ 2; 4; 4; 7; 11 ];
  Alcotest.(check int) "below all" 0 (Soa.bsearch_ge s ~col:0 1);
  Alcotest.(check int) "exact" 1 (Soa.bsearch_ge s ~col:0 4);
  Alcotest.(check int) "between" 3 (Soa.bsearch_ge s ~col:0 5);
  Alcotest.(check int) "above all" 5 (Soa.bsearch_ge s ~col:0 12);
  Alcotest.(check int) "sub-range" 3 (Soa.bsearch_ge s ~col:0 ~lo:3 ~hi:5 1);
  Alcotest.check_raises "bad range" (Invalid_argument "Soa.bsearch_ge: bad range")
    (fun () -> ignore (Soa.bsearch_ge s ~col:0 ~lo:2 ~hi:1 0))

let soa_matches_reference =
  Helpers.qcheck_case ~name:"soa columns equal reference arrays"
    QCheck2.Gen.(list (pair int (float_range (-1000.0) 1000.0)))
    (fun rows ->
      let s = Soa.create ~fcols:1 ~icols:1 () in
      List.iter
        (fun (i, f) ->
          let r = Soa.add_row s in
          Soa.set_i s ~col:0 r i;
          Soa.set_f s ~col:0 r f)
        rows;
      Soa.length s = List.length rows
      && List.for_all2
           (fun (i, f) r -> Soa.get_i s ~col:0 r = i && Soa.get_f s ~col:0 r = f)
           rows
           (List.init (Soa.length s) Fun.id))

(* -------------------------------------------------------------- Intmemo *)

let test_intmemo_basics () =
  let m = Intmemo.create ~init_bits:2 () in
  Alcotest.(check int) "capacity" 4 (Intmemo.capacity m);
  Alcotest.(check int) "miss" (-1) (Intmemo.find_slot m 42);
  Intmemo.add m 42 1.5;
  let s = Intmemo.find_slot m 42 in
  Alcotest.(check bool) "hit" true (s >= 0);
  Alcotest.(check (float 0.0)) "value" 1.5 (Intmemo.get m s);
  Intmemo.add m 42 2.5;
  Alcotest.(check (float 0.0)) "overwrite" 2.5 (Intmemo.get m (Intmemo.find_slot m 42));
  Alcotest.(check int) "live" 1 (Intmemo.live m)

let test_intmemo_generation_clear () =
  let m = Intmemo.create () in
  for k = 0 to 99 do
    Intmemo.add m k (Float.of_int k)
  done;
  Alcotest.(check int) "live before" 100 (Intmemo.live m);
  let g = Intmemo.generation m in
  Intmemo.next_generation m;
  Alcotest.(check int) "generation bumped" (g + 1) (Intmemo.generation m);
  Alcotest.(check int) "live reset" 0 (Intmemo.live m);
  for k = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "key %d invalidated" k) (-1) (Intmemo.find_slot m k)
  done;
  (* stale slots are reclaimable by the new generation *)
  Intmemo.add m 7 9.0;
  Alcotest.(check (float 0.0)) "reinsert after clear" 9.0
    (Intmemo.get m (Intmemo.find_slot m 7))

let test_intmemo_growth_rehash () =
  let m = Intmemo.create ~init_bits:1 () in
  let n = 500 in
  for k = 0 to n - 1 do
    Intmemo.add m (k * 7919) (Float.of_int k)
  done;
  Alcotest.(check int) "live" n (Intmemo.live m);
  Alcotest.(check bool) "load stays under 50%" true (Intmemo.capacity m >= 2 * n);
  for k = 0 to n - 1 do
    let s = Intmemo.find_slot m (k * 7919) in
    if s < 0 then Alcotest.failf "key %d lost in growth" k;
    Alcotest.(check (float 0.0)) "value survives rehash" (Float.of_int k) (Intmemo.get m s)
  done;
  Alcotest.check_raises "bad bits" (Invalid_argument "Intmemo.create: bad init_bits")
    (fun () -> ignore (Intmemo.create ~init_bits:0 ()))

let test_intmemo_reserve_raw () =
  let m = Intmemo.create () in
  let s = Intmemo.reserve m 13 in
  (Intmemo.vals m).(s) <- 3.25;
  Alcotest.(check int) "reserve finds same slot" s (Intmemo.reserve m 13);
  Alcotest.(check (float 0.0)) "raw store visible" 3.25 (Intmemo.get m (Intmemo.find_slot m 13));
  Alcotest.(check int) "live counts reserve once" 1 (Intmemo.live m)

let intmemo_matches_hashtbl =
  Helpers.qcheck_case ~name:"intmemo equals Hashtbl within a generation"
    QCheck2.Gen.(list (pair small_int (float_range (-100.0) 100.0)))
    (fun ops ->
      let m = Intmemo.create ~init_bits:1 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Intmemo.add m k v;
          Hashtbl.replace h k v)
        ops;
      Hashtbl.fold
        (fun k v ok ->
          ok
          &&
          let s = Intmemo.find_slot m k in
          s >= 0 && Intmemo.get m s = v)
        h true
      && Intmemo.live m = Hashtbl.length h)

let () =
  Alcotest.run "sh_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto scale" `Quick test_rng_pareto_scale;
          Alcotest.test_case "zipf bounds" `Quick test_rng_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "zipf n=1" `Quick test_rng_zipf_n1;
        ] );
      ( "stats",
        [
          Alcotest.test_case "sum empty" `Quick test_stats_sum_empty;
          Alcotest.test_case "kahan sum" `Quick test_stats_sum_kahan;
          Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "histogram counts" `Quick test_stats_histogram_counts;
          quantile_matches_sorted;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exact" `Quick test_metrics_exact;
          Alcotest.test_case "known errors" `Quick test_metrics_known;
          Alcotest.test_case "sse" `Quick test_metrics_sse;
          Alcotest.test_case "validation" `Quick test_metrics_validation;
        ] );
      ("heap", [ Alcotest.test_case "basics" `Quick test_heap_basics; heap_sorts ]);
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "allocation gauge" `Quick test_vec_allocation_gauge;
          vec_matches_list;
        ] );
      ( "soa",
        [
          Alcotest.test_case "basics" `Quick test_soa_basics;
          Alcotest.test_case "allocation gauge" `Quick test_soa_allocation_gauge;
          Alcotest.test_case "bsearch_ge" `Quick test_soa_bsearch_ge;
          soa_matches_reference;
        ] );
      ( "intmemo",
        [
          Alcotest.test_case "basics" `Quick test_intmemo_basics;
          Alcotest.test_case "generation clear" `Quick test_intmemo_generation_clear;
          Alcotest.test_case "growth rehash" `Quick test_intmemo_growth_rehash;
          Alcotest.test_case "reserve raw" `Quick test_intmemo_reserve_raw;
          intmemo_matches_hashtbl;
        ] );
    ]
