module RB = Sh_window.Ring_buffer

let test_basics () =
  let b = RB.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (RB.capacity b);
  Alcotest.(check int) "empty length" 0 (RB.length b);
  Alcotest.(check bool) "not full" false (RB.is_full b);
  RB.push b 1.0;
  RB.push b 2.0;
  Helpers.check_close "oldest" 1.0 (RB.oldest b);
  Helpers.check_close "newest" 2.0 (RB.newest b);
  RB.push b 3.0;
  Alcotest.(check bool) "full" true (RB.is_full b);
  RB.push b 4.0;
  (* window: 2, 3, 4 *)
  Helpers.check_close "evicted oldest" 2.0 (RB.oldest b);
  Helpers.check_close "get 2" 3.0 (RB.get b 2);
  Helpers.check_close "newest" 4.0 (RB.newest b);
  Alcotest.(check int) "stays at capacity" 3 (RB.length b)

let test_to_array_wrap () =
  let b = RB.create ~capacity:3 in
  List.iter (RB.push b) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (array (float 1e-9))) "wrapped contents" [| 3.0; 4.0; 5.0 |] (RB.to_array b)

let test_blit_to () =
  let b = RB.create ~capacity:4 in
  List.iter (RB.push b) [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 ];
  let dst = Array.make 4 0.0 in
  RB.blit_to b dst;
  Alcotest.(check (array (float 1e-9))) "blit" [| 3.0; 4.0; 5.0; 6.0 |] dst;
  Alcotest.check_raises "small destination"
    (Invalid_argument "Ring_buffer.blit_to: destination too small") (fun () ->
      RB.blit_to b (Array.make 3 0.0))

let test_iteri () =
  let b = RB.create ~capacity:2 in
  List.iter (RB.push b) [ 10.0; 20.0; 30.0 ];
  let acc = ref [] in
  RB.iteri b (fun i v -> acc := (i, v) :: !acc);
  Alcotest.(check (list (pair int (float 1e-9))))
    "pairs oldest-first" [ (1, 20.0); (2, 30.0) ] (List.rev !acc)

let test_bounds () =
  let b = RB.create ~capacity:2 in
  Alcotest.check_raises "get on empty" (Invalid_argument "Ring_buffer.get: index out of window")
    (fun () -> ignore (RB.get b 1));
  RB.push b 1.0;
  Alcotest.check_raises "index 0" (Invalid_argument "Ring_buffer.get: index out of window")
    (fun () -> ignore (RB.get b 0));
  Alcotest.check_raises "beyond length" (Invalid_argument "Ring_buffer.get: index out of window")
    (fun () -> ignore (RB.get b 2))

let test_clear () =
  let b = RB.create ~capacity:2 in
  RB.push b 1.0;
  RB.clear b;
  Alcotest.(check int) "cleared" 0 (RB.length b);
  RB.push b 9.0;
  Helpers.check_close "usable after clear" 9.0 (RB.oldest b)

let test_create_validation () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring_buffer.create: capacity must be >= 1") (fun () ->
      ignore (RB.create ~capacity:0))

let test_allocation_gauge () =
  let allocs () = Sh_obs.Metric.gvalue RB.allocations in
  let before = allocs () in
  let b = RB.create ~capacity:16 in
  Alcotest.(check (float 0.0)) "one allocation at create" (before +. 1.0) (allocs ());
  (* sliding, wrapping, and clearing never reallocate *)
  for i = 1 to 200 do
    RB.push b (Float.of_int i)
  done;
  RB.clear b;
  for i = 1 to 50 do
    RB.push b (Float.of_int i)
  done;
  Alcotest.(check (float 0.0)) "slides reuse the buffer" (before +. 1.0) (allocs ())

(* Reference model: the last [cap] pushed values. *)
let prop_matches_model =
  Helpers.qcheck_case ~count:100 ~name:"ring buffer equals suffix of pushed stream"
    QCheck2.Gen.(
      let* cap = int_range 1 10 in
      let* stream = array_size (int_range 0 80) (int_range (-50) 50) in
      return (cap, Array.map Float.of_int stream))
    (fun (cap, stream) ->
      let b = RB.create ~capacity:cap in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          RB.push b v;
          let len = min (i + 1) cap in
          let expect = Array.sub stream (i + 1 - len) len in
          if RB.to_array b <> expect then ok := false;
          for j = 1 to len do
            if RB.get b j <> expect.(j - 1) then ok := false
          done)
        stream;
      !ok)

let () =
  Alcotest.run "sh_window"
    [
      ( "ring_buffer",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "to_array wrap" `Quick test_to_array_wrap;
          Alcotest.test_case "blit_to" `Quick test_blit_to;
          Alcotest.test_case "iteri" `Quick test_iteri;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "allocation gauge" `Quick test_allocation_gauge;
          prop_matches_model;
        ] );
    ]
