(* Shared test utilities: float comparison, QCheck generators, and naive
   reference implementations used as oracles. *)

let close ?(eps = 1e-9) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_close ?(eps = 1e-9) msg expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let qcheck_case ?(count = 100) ~name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* Data arrays: small integer-valued floats, as the paper's bounded-integer
   stream model assumes. *)
let gen_data ?(min_len = 1) ?(max_len = 64) ?(vmax = 100) () =
  QCheck2.Gen.(
    let* len = int_range min_len max_len in
    let* ints = array_size (return len) (int_range 0 vmax) in
    return (Array.map Float.of_int ints))

(* Naive oracles. *)
let naive_range_sum data lo hi =
  let acc = ref 0.0 in
  for i = lo to hi do
    acc := !acc +. data.(i - 1)
  done;
  !acc

let naive_sqerror data lo hi =
  if lo > hi then 0.0 else Sh_util.Stats.sse_about_mean data (lo - 1) (hi - 1)

(* Exhaustive optimal histogram error for tiny inputs: enumerate every way
   to choose b-1 boundaries among n-1 gaps. *)
let brute_force_optimal_error data buckets =
  let n = Array.length data in
  let b = min buckets n in
  let best = ref infinity in
  (* boundaries are right endpoints 1 <= e1 < e2 < ... < e_{b-1} < n *)
  let rec go start remaining prev_end acc_err =
    if remaining = 0 then begin
      let total = acc_err +. naive_sqerror data (prev_end + 1) n in
      if total < !best then best := total
    end
    else
      for e = start to n - remaining do
        go (e + 1) (remaining - 1) e (acc_err +. naive_sqerror data (prev_end + 1) e)
      done
  in
  go 1 (b - 1) 0 0.0;
  !best

let rng ~seed = Sh_util.Rng.create ~seed
