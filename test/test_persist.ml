(* lib/persist + snapshot/restore: codec primitives, frame integrity,
   round-trip equivalence ("restore == never crashed", bit-identical), and
   the fault-injection matrix proving every partial or mangled write is
   either cleanly recovered or loudly rejected with a typed error. *)

module Crc32 = Sh_persist.Crc32
module Codec = Sh_persist.Codec
module Frame = Sh_persist.Frame
module Fault = Sh_persist.Fault
module P = Sh_persist.Persist
module FW = Stream_histogram.Fixed_window
module EW = Stream_histogram.Exact_window
module AG = Stream_histogram.Agglomerative
module Snapshot = Stream_histogram.Snapshot
module Params = Stream_histogram.Params
module Pool = Sh_par.Domain_pool
module SE = Sh_par.Shard_engine
module H = Sh_histogram.Histogram
module M = Sh_obs.Metric

let domain_counts =
  match Sys.getenv_opt "SH_TEST_DOMAINS" with
  | None | Some "" -> [ 1; 2; 4 ]
  | Some s -> List.filter_map int_of_string_opt (String.split_on_char ',' s)

let bits = Int64.bits_of_float

(* Restores must fail with a *typed* error — anything else (success, or a
   stray Failure/Invalid_argument escaping a decoder) is a bug. *)
let expect_rejected what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Corrupt/Version_mismatch, restore succeeded" what
  | exception P.Corrupt _ -> ()
  | exception P.Version_mismatch _ -> ()

let expect_injected what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Fault.Injected" what
  | exception Fault.Injected _ -> ()

let with_temp_file f =
  let file = Filename.temp_file "shist_persist" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      try Sys.remove (file ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f file)

(* ---------------------------------------------------------------- crc32 *)

let test_crc32_vector () =
  Alcotest.(check int) "reference vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "sub slice agrees"
    (Crc32.string "123456789")
    (Crc32.sub "xx123456789yy" ~pos:2 ~len:9);
  Alcotest.(check bool) "one flipped byte changes the sum" true
    (Crc32.string "123456788" <> Crc32.string "123456789")

(* ---------------------------------------------------------------- codec *)

let test_varint_round_trip () =
  let cases =
    [ 0; 1; 127; 128; 255; 300; 16383; 16384; 1 lsl 20; (1 lsl 30) + 7; max_int / 2 ]
  in
  let buf = Buffer.create 64 in
  List.iter (Codec.put_varint buf) cases;
  let r = Codec.of_string (Buffer.contents buf) in
  List.iter
    (fun v -> Alcotest.(check int) (Printf.sprintf "varint %d" v) v (Codec.get_varint r))
    cases;
  Alcotest.(check bool) "consumed exactly" true (Codec.at_end r);
  Alcotest.check_raises "negative rejected at write time"
    (Invalid_argument "Codec.put_varint: negative") (fun () ->
      Codec.put_varint (Buffer.create 4) (-1))

let test_varint_malformed () =
  (* truncated: a continuation byte with nothing after it *)
  expect_rejected "truncated varint" (fun () ->
      Codec.get_varint (Codec.of_string "\x80"));
  (* overlong: ten continuation bytes overflow the 62-bit budget *)
  expect_rejected "overlong varint" (fun () ->
      Codec.get_varint (Codec.of_string (String.make 10 '\xff')))

let test_float_bit_identical () =
  let specials =
    [ 0.0; -0.0; 1.5; -1.5; Float.min_float; Float.max_float; 4.9e-324 (* subnormal *); 1e308 ]
  in
  let buf = Buffer.create 64 in
  List.iter (Codec.put_float buf) specials;
  let r = Codec.of_string (Buffer.contents buf) in
  List.iter
    (fun v ->
      Alcotest.(check int64)
        (Printf.sprintf "float %h bit-identical" v)
        (bits v)
        (bits (Codec.get_float r)))
    specials

let test_scalar_round_trips () =
  let buf = Buffer.create 64 in
  Codec.put_u8 buf 0xAB;
  Codec.put_u32 buf 0xDEADBEEF;
  Codec.put_bool buf true;
  Codec.put_bool buf false;
  Codec.put_string buf "hello";
  Codec.put_string buf "";
  Codec.put_float_array buf [| 1.0; -2.5; 0.0 |];
  Codec.put_float_array buf [||];
  let r = Codec.of_string (Buffer.contents buf) in
  Alcotest.(check int) "u8" 0xAB (Codec.get_u8 r);
  Alcotest.(check int) "u32" 0xDEADBEEF (Codec.get_u32 r);
  Alcotest.(check bool) "true" true (Codec.get_bool r);
  Alcotest.(check bool) "false" false (Codec.get_bool r);
  Alcotest.(check string) "string" "hello" (Codec.get_string r);
  Alcotest.(check string) "empty string" "" (Codec.get_string r);
  Alcotest.(check (array (float 0.0))) "float array" [| 1.0; -2.5; 0.0 |]
    (Codec.get_float_array r);
  Alcotest.(check (array (float 0.0))) "empty float array" [||] (Codec.get_float_array r);
  Codec.expect_end r ~what:"scalar round trip"

let test_codec_guards () =
  expect_rejected "bad bool byte" (fun () -> Codec.get_bool (Codec.of_string "\x07"));
  expect_rejected "truncated float" (fun () -> Codec.get_float (Codec.of_string "\x00\x00"));
  (* a float-array length far beyond the remaining bytes must be rejected
     before any allocation-sized-by-attacker happens *)
  let buf = Buffer.create 8 in
  Codec.put_varint buf 1_000_000;
  Buffer.add_string buf "\x00\x00";
  expect_rejected "float array length beyond input" (fun () ->
      Codec.get_float_array (Codec.of_string (Buffer.contents buf)));
  expect_rejected "string length beyond input" (fun () ->
      Codec.get_string (Codec.of_string "\x05ab"));
  expect_rejected "trailing bytes" (fun () ->
      Codec.expect_end (Codec.of_string "x") ~what:"test")

(* ---------------------------------------------------------------- frame *)

let test_header_round_trip () =
  let r = Codec.of_string (Frame.header_string ()) in
  Frame.read_header r;
  Alcotest.(check bool) "header consumed" true (Codec.at_end r)

let test_header_bad_magic () =
  expect_rejected "bad magic" (fun () ->
      Frame.read_header (Codec.of_string "NOPE\x01"));
  expect_rejected "empty input" (fun () -> Frame.read_header (Codec.of_string ""))

let test_header_version_mismatch () =
  let buf = Buffer.create 8 in
  Buffer.add_string buf Frame.magic;
  Codec.put_varint buf (Frame.format_version + 1);
  match Frame.read_header (Codec.of_string (Buffer.contents buf)) with
  | () -> Alcotest.fail "foreign version accepted"
  | exception Codec.Version_mismatch { found; expected } ->
    Alcotest.(check int) "found" (Frame.format_version + 1) found;
    Alcotest.(check int) "expected" Frame.format_version expected

let test_frame_round_trip () =
  let payloads = [ "alpha"; ""; String.make 300 'z' ] in
  let buf = Buffer.create 64 in
  List.iter (Frame.add_frame buf) payloads;
  let r = Codec.of_string (Buffer.contents buf) in
  List.iter
    (fun p ->
      let fr = Frame.read_frame r in
      Alcotest.(check string) "payload" p (Codec.get_raw fr (String.length p));
      Codec.expect_end fr ~what:"payload")
    payloads;
  Alcotest.(check bool) "no frame left" false (Frame.has_frame r)

let test_frame_damage_detected () =
  let img = Frame.frame_string "payload bytes here" in
  (* flip one payload byte: CRC must catch it *)
  let bad = Bytes.of_string img in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 0x10));
  expect_rejected "payload bit flip" (fun () ->
      Frame.read_frame (Codec.of_string (Bytes.to_string bad)));
  (* truncations at every byte of a short frame *)
  for k = 0 to String.length img - 1 do
    expect_rejected
      (Printf.sprintf "truncated at %d" k)
      (fun () -> Frame.read_frame (Codec.of_string (String.sub img 0 k)))
  done

(* ------------------------------------------- summary round trips (qcheck) *)

let policies = [ Params.Lazy; Params.Eager; Params.Every 3 ]

(* Structural equality of two fixed windows, checked *before* any query
   (queries refresh, which resets the Every-k arrival cadence). *)
let fw_state_equal a b =
  FW.length a = FW.length b
  && FW.window a = FW.window b
  && FW.buckets a = FW.buckets b
  && bits (FW.epsilon a) = bits (FW.epsilon b)
  && FW.refresh_policy a = FW.refresh_policy b
  && FW.pending_pushes a = FW.pending_pushes b
  && FW.memoisation a = FW.memoisation b

let fw_answers_equal a b =
  FW.length a = FW.length b
  && (FW.length a = 0
     || bits (FW.current_error a) = bits (FW.current_error b)
        && H.to_series (FW.current_histogram a) = H.to_series (FW.current_histogram b))

let prop_fixed_window_round_trip =
  Helpers.qcheck_case ~count:60 ~name:"Fixed_window: restore (snapshot t) == t, bit-identical"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:0 ~max_len:120 ~vmax:500 () in
      let* window = int_range 2 40 in
      let* buckets = int_range 2 4 in
      let* policy = oneofl policies in
      let* memo = bool in
      let* cut = int_range 0 (Array.length data) in
      return (data, window, buckets, policy, memo, cut))
    (fun (data, window, buckets, policy, memo, cut) ->
      let fw = FW.create ~window ~buckets ~epsilon:0.1 in
      FW.set_refresh_policy fw policy;
      FW.set_memoisation fw memo;
      let prefix = Array.sub data 0 cut and suffix = Array.sub data cut (Array.length data - cut) in
      Array.iter (FW.push fw) prefix;
      let s = Snapshot.Fixed_window.snapshot fw in
      let r = Snapshot.Fixed_window.restore s in
      (* snapshot is a pure function of the state, so a restored summary
         must re-snapshot to the very same bytes *)
      fw_state_equal fw r
      && Snapshot.Fixed_window.snapshot r = s
      && fw_answers_equal fw r
      && begin
           (* "equivalent to never having crashed": the restored summary
              must track the original through arbitrary further arrivals *)
           Array.iter
             (fun v ->
               FW.push fw v;
               FW.push r v)
             suffix;
           fw_answers_equal fw r
         end)

let prop_exact_window_round_trip =
  Helpers.qcheck_case ~count:40 ~name:"Exact_window: restore (snapshot t) == t"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:0 ~max_len:40 ~vmax:200 () in
      let* window = int_range 1 16 in
      let* buckets = int_range 1 4 in
      return (data, window, buckets))
    (fun (data, window, buckets) ->
      let ew = EW.create ~window ~buckets ~epsilon:0.0 in
      Array.iter (EW.push ew) data;
      let s = Snapshot.Exact_window.snapshot ew in
      let r = Snapshot.Exact_window.restore s in
      EW.length ew = EW.length r
      && Snapshot.Exact_window.snapshot r = s
      && (EW.length ew = 0
         || bits (EW.current_error ew) = bits (EW.current_error r)
            && H.to_series (EW.current_histogram ew) = H.to_series (EW.current_histogram r))
      && begin
           EW.push ew 7.0;
           EW.push r 7.0;
           H.to_series (EW.current_histogram ew) = H.to_series (EW.current_histogram r)
         end)

let prop_agglomerative_round_trip =
  Helpers.qcheck_case ~count:40 ~name:"Agglomerative: restore (snapshot t) == t, bit-identical"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:0 ~max_len:150 ~vmax:500 () in
      let* buckets = int_range 2 4 in
      let* cut = int_range 0 (Array.length data) in
      return (data, buckets, cut))
    (fun (data, buckets, cut) ->
      let ag = AG.create ~buckets ~epsilon:0.2 in
      let prefix = Array.sub data 0 cut and suffix = Array.sub data cut (Array.length data - cut) in
      Array.iter (AG.push ag) prefix;
      let s = Snapshot.Agglomerative.snapshot ag in
      let r = Snapshot.Agglomerative.restore s in
      let answers_equal a b =
        AG.count a = AG.count b
        && bits (AG.current_error a) = bits (AG.current_error b)
        && AG.space_in_entries a = AG.space_in_entries b
        && (AG.count a = 0
           || H.to_series (AG.current_histogram a) = H.to_series (AG.current_histogram b))
      in
      AG.window ag = AG.window r
      && Snapshot.Agglomerative.snapshot r = s
      && answers_equal ag r
      && begin
           Array.iter
             (fun v ->
               AG.push ag v;
               AG.push r v)
             suffix;
           answers_equal ag r
         end)

let test_cross_type_restore_rejected () =
  let ew = EW.create ~window:8 ~buckets:2 ~epsilon:0.0 in
  EW.push ew 1.0;
  let s = Snapshot.Exact_window.snapshot ew in
  (* well-formed frames, wrong payload tag: typed rejection, not garbage *)
  expect_rejected "EW snapshot fed to FW restore" (fun () ->
      Snapshot.Fixed_window.restore s);
  expect_rejected "EW snapshot fed to AG restore" (fun () ->
      Snapshot.Agglomerative.restore s);
  expect_rejected "empty string" (fun () -> Snapshot.Fixed_window.restore "")

let test_save_load_file () =
  with_temp_file @@ fun file ->
  let fw = FW.create ~window:16 ~buckets:3 ~epsilon:0.2 in
  for i = 1 to 50 do
    FW.push fw (Float.of_int ((i * 13) mod 97))
  done;
  Snapshot.Fixed_window.save fw ~file;
  let r = Snapshot.Fixed_window.load ~file in
  Alcotest.(check bool) "state equal" true (fw_state_equal fw r);
  Alcotest.(check bool) "answers equal" true (fw_answers_equal fw r);
  Alcotest.(check bool) "no temp residue" false (Sys.file_exists (file ^ ".tmp"))

(* -------------------------------------------- shard-engine checkpointing *)

let mk_batch ~shards ~n salt =
  Array.init n (fun i -> ((i * 7 + salt) mod shards, Float.of_int (((i + salt) * 13) mod 97)))

(* Callers must quiesce both engines ([SE.refresh_all]) before comparing:
   [Pinned] answers come from the snapshot published at the last refresh
   completion, so an engine with trailing unrefreshed pushes would compare
   stale view answers against the other side's self-refreshing live
   answers.  Quiescing cannot happen here because it resets the persisted
   arrival-cadence counter and would break byte-identity checks that
   callers interleave with comparisons. *)
let engines_equal a b =
  SE.shard_count a = SE.shard_count b
  && SE.total_points a = SE.total_points b
  && SE.batches a = SE.batches b
  &&
  let ok = ref true in
  for k = 0 to SE.shard_count a - 1 do
    if SE.length a ~key:k <> SE.length b ~key:k then ok := false
    else if SE.length a ~key:k > 0 then begin
      if bits (SE.current_error a ~key:k) <> bits (SE.current_error b ~key:k) then ok := false;
      if H.to_series (SE.current_histogram a ~key:k) <> H.to_series (SE.current_histogram b ~key:k)
      then ok := false
    end
  done;
  !ok

let test_engine_checkpoint_restore () =
  List.iter
    (fun domains ->
      let tag = Printf.sprintf "%d domains" domains in
      with_temp_file @@ fun file ->
      Pool.with_pool ~domains @@ fun pool ->
      let shards = 5 in
      let eng = SE.create ~pool ~shards ~window:24 ~buckets:3 ~epsilon:0.2 in
      SE.set_refresh_policy eng (Params.Every 3);
      for b = 0 to 5 do
        SE.ingest eng (mk_batch ~shards ~n:40 b)
      done;
      (* quiesce so both sides' read planes agree (see [engines_equal]) *)
      SE.refresh_all eng;
      SE.checkpoint eng ~file;
      let restored = SE.restore_from ~pool ~file in
      Alcotest.(check bool)
        (Printf.sprintf "restored == original, %s" tag)
        true (engines_equal eng restored);
      (* checkpoint of the restored engine must be byte-identical *)
      with_temp_file (fun file2 ->
          SE.checkpoint restored ~file:file2;
          Alcotest.(check string)
            (Printf.sprintf "re-checkpoint bytes identical, %s" tag)
            (P.read_file file) (P.read_file file2));
      (* and it must track the original through further ingest *)
      let more = mk_batch ~shards ~n:60 99 in
      SE.ingest eng more;
      SE.ingest restored more;
      SE.refresh_all eng;
      SE.refresh_all restored;
      Alcotest.(check bool)
        (Printf.sprintf "tracks original after restart, %s" tag)
        true (engines_equal eng restored))
    domain_counts

(* the checkpoint byte stream doubles as the aggregation plane's snapshot
   interchange: in-memory snapshot bytes must be exactly the checkpoint
   file image, and decode back to the same shard summaries *)
let test_engine_snapshot_bytes_roundtrip () =
  with_temp_file @@ fun file ->
  Pool.with_pool ~domains:2 @@ fun pool ->
  let shards = 4 in
  let eng = SE.create ~pool ~shards ~window:16 ~buckets:3 ~epsilon:0.2 in
  for b = 0 to 3 do
    SE.ingest eng (mk_batch ~shards ~n:30 b)
  done;
  SE.refresh_all eng;
  SE.checkpoint eng ~file;
  let bytes = SE.snapshot_bytes eng in
  Alcotest.(check string) "snapshot bytes == checkpoint file image" (P.read_file file) bytes;
  let fws = SE.decode_snapshot bytes in
  Alcotest.(check int) "decoded shard count" shards (Array.length fws);
  let enc fw =
    let b = Buffer.create 256 in
    FW.encode b fw;
    Buffer.contents b
  in
  Array.iteri
    (fun k fw ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d length" k)
        (SE.length eng ~key:k) (FW.length fw);
      Alcotest.(check string)
        (Printf.sprintf "shard %d re-encodes identically" k)
        (SE.with_key eng ~key:k ~f:enc) (enc fw))
    fws;
  (* mangled interchange bytes are rejected, not mis-decoded *)
  let mangled = Bytes.of_string bytes in
  Bytes.set mangled (String.length bytes / 2)
    (Char.chr ((Char.code (Bytes.get mangled (String.length bytes / 2)) + 1) land 0xff));
  Alcotest.(check bool) "corrupt snapshot rejected" true
    (match SE.decode_snapshot (Bytes.to_string mangled) with
    | _ -> false
    | exception Sh_persist.Persist.Corrupt _ -> true)

(* -------------------------------------------------- fault-injection matrix *)

(* A fixed scenario: checkpoint A is on disk; the engine advances; a fault
   fires during (or after) the next checkpoint.  Every crash injection must
   leave checkpoint A restorable and equal to the state it captured; every
   mangling injection must make restore raise a typed error. *)

let engine_scenario pool =
  let shards = 4 in
  (* Pinned: every faulted checkpoint also exercises the ring-quiescence
     path that precedes frame encoding *)
  let eng =
    SE.create ~pool ~shards ~window:16 ~buckets:3 ~epsilon:0.2
  in
  for b = 0 to 3 do
    SE.ingest eng (mk_batch ~shards ~n:30 b)
  done;
  eng

let test_fault_crash_matrix () =
  Pool.with_pool ~domains:2 @@ fun pool ->
  with_temp_file @@ fun file ->
  let eng = engine_scenario pool in
  SE.checkpoint eng ~file;
  let golden = P.read_file file in
  let shards = SE.shard_count eng in
  (* frames in an engine checkpoint: 1 meta + one per shard; probe every
     crash point, including "crash between last write and rename" *)
  let crash_points =
    Fault.Crash_before_rename
    :: List.init (shards + 3) (fun j -> Fault.Crash_after_frames j)
  in
  List.iteri
    (fun i inj ->
      (* advance the live engine so the aborted checkpoint would have
         written different bytes than checkpoint A *)
      SE.ingest eng (mk_batch ~shards ~n:25 (1000 + i));
      let fired_before = Fault.fired_count () in
      Fault.arm inj;
      expect_injected "crashing checkpoint" (fun () -> SE.checkpoint eng ~file);
      Alcotest.(check int) "injection consumed" (fired_before + 1) (Fault.fired_count ());
      Alcotest.(check (option reject)) "slot disarmed" None (Fault.armed ());
      (* the published file is byte-for-byte checkpoint A... *)
      Alcotest.(check string)
        (Printf.sprintf "crash %d left checkpoint A untouched" i)
        golden (P.read_file file);
      (* ...and still restores to a working engine *)
      let r = SE.restore_from ~pool ~file in
      Alcotest.(check int) "restored shard count" shards (SE.shard_count r))
    crash_points;
  (* after all that, an unfaulted checkpoint still works *)
  SE.refresh_all eng;
  SE.checkpoint eng ~file;
  Alcotest.(check bool) "clean checkpoint after faults" true
    (engines_equal eng (SE.restore_from ~pool ~file))

let test_fault_mangling_matrix () =
  Pool.with_pool ~domains:2 @@ fun pool ->
  with_temp_file @@ fun file ->
  let eng = engine_scenario pool in
  SE.checkpoint eng ~file;
  let len = String.length (P.read_file file) in
  (* truncation points: header, meta frame, shard frames, final CRC *)
  let cuts =
    List.sort_uniq compare
      [ 0; 1; 3; 4; 5; len / 4; len / 2; (3 * len) / 4; len - 5; len - 1 ]
  in
  List.iter
    (fun k ->
      if k >= 0 && k < len then begin
        Fault.arm (Fault.Truncate_at k);
        (* mangling injections return normally: the damage is the published
           image, and it must surface at restore time *)
        SE.checkpoint eng ~file;
        let rej_before = M.value P.c_corrupt_rejections in
        expect_rejected
          (Printf.sprintf "restore of file truncated at %d" k)
          (fun () -> SE.restore_from ~pool ~file);
        Alcotest.(check bool)
          (Printf.sprintf "rejection counted (truncate %d)" k)
          true
          (M.value P.c_corrupt_rejections > rej_before)
      end)
    cuts;
  (* bit flips: magic, version, frame length, payload, trailing CRC *)
  let flips =
    List.sort_uniq compare
      [ 0; 8 * 4; (8 * 5) + 2; 8 * (len / 3); 8 * (len / 2); (8 * len) - 1 ]
  in
  List.iter
    (fun i ->
      if i >= 0 && i < 8 * len then begin
        Fault.arm (Fault.Flip_bit i);
        SE.checkpoint eng ~file;
        expect_rejected
          (Printf.sprintf "restore of file with bit %d flipped" i)
          (fun () -> SE.restore_from ~pool ~file)
      end)
    flips;
  (* recovery: the next clean checkpoint heals the damaged file *)
  SE.refresh_all eng;
  SE.checkpoint eng ~file;
  Alcotest.(check bool) "healed by clean checkpoint" true
    (engines_equal eng (SE.restore_from ~pool ~file))

let test_fault_save_crash_keeps_old_snapshot () =
  with_temp_file @@ fun file ->
  let fw = FW.create ~window:12 ~buckets:2 ~epsilon:0.3 in
  for i = 1 to 30 do
    FW.push fw (Float.of_int (i mod 11))
  done;
  Snapshot.Fixed_window.save fw ~file;
  let golden = P.read_file file in
  FW.push fw 42.0;
  Fault.arm Fault.Crash_before_rename;
  expect_injected "crashing save" (fun () -> Snapshot.Fixed_window.save fw ~file);
  Alcotest.(check string) "old snapshot intact" golden (P.read_file file);
  let r = Snapshot.Fixed_window.load ~file in
  Alcotest.(check int) "old state restored" 12 (FW.length r)

let test_fault_disarm () =
  Fault.arm (Fault.Truncate_at 3);
  Fault.disarm ();
  Alcotest.(check (option reject)) "disarmed" None (Fault.armed ());
  with_temp_file @@ fun file ->
  let fw = FW.create ~window:4 ~buckets:2 ~epsilon:0.5 in
  FW.push fw 1.0;
  Snapshot.Fixed_window.save fw ~file;
  Alcotest.(check int) "write unaffected after disarm" 1
    (FW.length (Snapshot.Fixed_window.load ~file))

let () =
  Alcotest.run "sh_persist"
    [
      ("crc32", [ Alcotest.test_case "vectors" `Quick test_crc32_vector ]);
      ( "codec",
        [
          Alcotest.test_case "varint round trip" `Quick test_varint_round_trip;
          Alcotest.test_case "varint malformed" `Quick test_varint_malformed;
          Alcotest.test_case "float bit-identical" `Quick test_float_bit_identical;
          Alcotest.test_case "scalar round trips" `Quick test_scalar_round_trips;
          Alcotest.test_case "decode guards" `Quick test_codec_guards;
        ] );
      ( "frame",
        [
          Alcotest.test_case "header round trip" `Quick test_header_round_trip;
          Alcotest.test_case "bad magic" `Quick test_header_bad_magic;
          Alcotest.test_case "version mismatch" `Quick test_header_version_mismatch;
          Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
          Alcotest.test_case "damage detected" `Quick test_frame_damage_detected;
        ] );
      ( "round_trip",
        [
          prop_fixed_window_round_trip;
          prop_exact_window_round_trip;
          prop_agglomerative_round_trip;
          Alcotest.test_case "cross-type rejected" `Quick test_cross_type_restore_rejected;
          Alcotest.test_case "save/load file" `Quick test_save_load_file;
        ] );
      ( "shard_engine",
        [
          Alcotest.test_case "checkpoint/restore at 1,2,4 domains"
            `Quick test_engine_checkpoint_restore;
          Alcotest.test_case "snapshot bytes interchange" `Quick
            test_engine_snapshot_bytes_roundtrip;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash matrix" `Quick test_fault_crash_matrix;
          Alcotest.test_case "mangling matrix" `Quick test_fault_mangling_matrix;
          Alcotest.test_case "save crash keeps old file" `Quick
            test_fault_save_crash_keeps_old_snapshot;
          Alcotest.test_case "disarm" `Quick test_fault_disarm;
        ] );
    ]
