module P = Sh_prefix.Prefix_sums
module V = Sh_histogram.Vopt
module Syn = Sh_wavelet.Synopsis
module E = Sh_query.Estimator
module W = Sh_query.Workload
module Ev = Sh_query.Evaluate

let data = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 |]

let test_exact_estimator () =
  let e = E.exact (P.make data) in
  Alcotest.(check int) "n" 8 e.E.n;
  Helpers.check_close "point" 3.0 (e.E.point 3);
  Helpers.check_close "range" 9.0 (e.E.range_sum ~lo:2 ~hi:4);
  Helpers.check_close "avg" 3.0 (E.range_avg e ~lo:2 ~hi:4)

let test_of_series () =
  let e = E.of_series ~name:"x" [| 10.0; 20.0 |] in
  Alcotest.(check string) "name" "x" e.E.name;
  Helpers.check_close "sum" 30.0 (e.E.range_sum ~lo:1 ~hi:2)

let test_histogram_estimator_matches_histogram () =
  let h = V.build data ~buckets:3 in
  let e = E.of_histogram h in
  for lo = 1 to 8 do
    for hi = lo to 8 do
      Helpers.check_close "range matches"
        (Sh_histogram.Histogram.range_sum_estimate h ~lo ~hi)
        (e.E.range_sum ~lo ~hi)
    done
  done

let test_streaming_wavelet_estimator () =
  let sw = Sh_wavelet.Streaming.create ~budget:8 in
  Array.iter (Sh_wavelet.Streaming.push sw) data;
  let e = E.of_streaming_wavelet sw in
  Alcotest.(check int) "n" 8 e.E.n;
  Helpers.check_close "point matches module"
    (Sh_wavelet.Streaming.point_estimate sw 3)
    (e.E.point 3);
  Helpers.check_close "range matches module"
    (Sh_wavelet.Streaming.range_sum_estimate sw ~lo:2 ~hi:6)
    (e.E.range_sum ~lo:2 ~hi:6)

let test_wavelet_estimator_matches_synopsis () =
  let s = Syn.build data ~coeffs:4 in
  let e = E.of_wavelet s in
  Helpers.check_close "point" (Syn.point_estimate s 5) (e.E.point 5);
  Helpers.check_close "range" (Syn.range_sum_estimate s ~lo:2 ~hi:7) (e.E.range_sum ~lo:2 ~hi:7)

let test_workload_bounds () =
  let rng = Helpers.rng ~seed:31 in
  let qs = W.random_ranges rng ~n:100 ~count:1000 in
  Alcotest.(check int) "count" 1000 (Array.length qs);
  Array.iter
    (fun { W.lo; hi } ->
      Alcotest.(check bool) "valid range" true (1 <= lo && lo <= hi && hi <= 100))
    qs

let test_workload_spans_capped () =
  let rng = Helpers.rng ~seed:32 in
  let qs = W.random_ranges_span rng ~n:100 ~count:500 ~max_span:5 in
  Array.iter
    (fun { W.lo; hi } -> Alcotest.(check bool) "span <= 5" true (hi - lo + 1 <= 5))
    qs

let test_workload_deterministic () =
  let a = W.random_ranges (Helpers.rng ~seed:7) ~n:50 ~count:100 in
  let b = W.random_ranges (Helpers.rng ~seed:7) ~n:50 ~count:100 in
  Alcotest.(check bool) "same seed same workload" true (a = b)

let test_points_bounds () =
  let rng = Helpers.rng ~seed:33 in
  let ps = W.random_points rng ~n:10 ~count:200 in
  Array.iter (fun p -> Alcotest.(check bool) "in range" true (p >= 1 && p <= 10)) ps

let test_evaluate_exact_is_zero_error () =
  let truth = E.exact (P.make data) in
  let qs = W.random_ranges (Helpers.rng ~seed:1) ~n:8 ~count:50 in
  let s = Ev.range_sum_errors ~truth truth qs in
  Helpers.check_close "mae 0" 0.0 s.Sh_util.Metrics.mae;
  Helpers.check_close "max 0" 0.0 s.Sh_util.Metrics.max_abs

let test_evaluate_known_error () =
  let truth = E.exact (P.make data) in
  let shifted = E.of_series (Array.map (fun v -> v +. 1.0) data) in
  let qs = [| { W.lo = 1; hi = 4 } |] in
  let s = Ev.range_sum_errors ~truth shifted qs in
  (* Each point over-estimates by 1, so the length-4 range is off by 4. *)
  Helpers.check_close "mae" 4.0 s.Sh_util.Metrics.mae;
  let pe = Ev.point_errors ~truth shifted [| 1; 5 |] in
  Helpers.check_close "point mae" 1.0 pe.Sh_util.Metrics.mae;
  let ae = Ev.range_avg_errors ~truth shifted qs in
  Helpers.check_close "avg mae" 1.0 ae.Sh_util.Metrics.mae

let test_evaluate_incompatible () =
  let a = E.of_series [| 1.0 |] and b = E.of_series [| 1.0; 2.0 |] in
  Alcotest.check_raises "different ranges"
    (Invalid_argument "Evaluate: estimators cover different index ranges") (fun () ->
      ignore (Ev.range_sum_errors ~truth:a b [||]))

let prop_better_synopsis_never_loses_to_worse =
  (* A histogram with more buckets cannot have (meaningfully) larger SSE;
     check the query-error summary follows on random workloads. *)
  Helpers.qcheck_case ~count:30 ~name:"more buckets does not hurt range-sum RMSE much"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:16 ~max_len:64 ~vmax:500 () in
      return data)
    (fun data ->
      let n = Array.length data in
      let p = P.make data in
      let truth = E.exact p in
      let qs = W.random_ranges (Helpers.rng ~seed:5) ~n ~count:200 in
      let rmse b =
        let h = V.build_prefix p ~buckets:b in
        (Ev.range_sum_errors ~truth (E.of_histogram h) qs).Sh_util.Metrics.rmse
      in
      (* Allow a small tolerance: query error is not exactly monotone in
         bucket count, but B = n must be exact. *)
      rmse n <= 1e-6 && rmse (max 1 (n / 2)) <= rmse 1 +. 1e-6)

let () =
  Alcotest.run "sh_query"
    [
      ( "estimator",
        [
          Alcotest.test_case "exact" `Quick test_exact_estimator;
          Alcotest.test_case "of_series" `Quick test_of_series;
          Alcotest.test_case "histogram" `Quick test_histogram_estimator_matches_histogram;
          Alcotest.test_case "wavelet" `Quick test_wavelet_estimator_matches_synopsis;
          Alcotest.test_case "streaming wavelet" `Quick test_streaming_wavelet_estimator;
        ] );
      ( "workload",
        [
          Alcotest.test_case "bounds" `Quick test_workload_bounds;
          Alcotest.test_case "span cap" `Quick test_workload_spans_capped;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "points" `Quick test_points_bounds;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "zero error" `Quick test_evaluate_exact_is_zero_error;
          Alcotest.test_case "known error" `Quick test_evaluate_known_error;
          Alcotest.test_case "incompatible" `Quick test_evaluate_incompatible;
          prop_better_synopsis_never_loses_to_worse;
        ] );
    ]
