module Haar = Sh_wavelet.Haar
module Syn = Sh_wavelet.Synopsis

let gen_pow2_data =
  QCheck2.Gen.(
    let* log_n = int_range 0 6 in
    let n = 1 lsl log_n in
    let* ints = array_size (return n) (int_range (-100) 100) in
    return (Array.map Float.of_int ints))

(* ----------------------------------------------------------------- Haar *)

let test_pow2_helpers () =
  Alcotest.(check bool) "1 is pow2" true (Haar.is_pow2 1);
  Alcotest.(check bool) "8 is pow2" true (Haar.is_pow2 8);
  Alcotest.(check bool) "12 is not" false (Haar.is_pow2 12);
  Alcotest.(check bool) "0 is not" false (Haar.is_pow2 0);
  Alcotest.(check int) "next 1" 1 (Haar.next_pow2 1);
  Alcotest.(check int) "next 5" 8 (Haar.next_pow2 5);
  Alcotest.(check int) "next 8" 8 (Haar.next_pow2 8)

let test_transform_known () =
  (* [a,b] -> [(a+b)/sqrt2, (a-b)/sqrt2] *)
  let c = Haar.transform [| 3.0; 1.0 |] in
  Helpers.check_close "avg coeff" (4.0 /. sqrt 2.0) c.(0);
  Helpers.check_close "detail" (2.0 /. sqrt 2.0) c.(1)

let test_transform_constant () =
  let c = Haar.transform (Array.make 8 5.0) in
  Helpers.check_close "scaling carries everything" (5.0 *. sqrt 8.0) c.(0);
  for i = 1 to 7 do
    Helpers.check_close "details vanish" 0.0 c.(i)
  done

let test_transform_rejects_non_pow2 () =
  Alcotest.check_raises "non-pow2" (Invalid_argument "Haar.transform: length must be a power of two")
    (fun () -> ignore (Haar.transform (Array.make 3 0.0)))

let prop_roundtrip =
  Helpers.qcheck_case ~name:"inverse . transform = id" gen_pow2_data (fun data ->
      let back = Haar.inverse (Haar.transform data) in
      Array.for_all2 (fun a b -> Helpers.close ~eps:1e-9 a b) data back)

let prop_parseval =
  Helpers.qcheck_case ~name:"transform preserves L2 norm (Parseval)" gen_pow2_data (fun data ->
      let norm xs = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      Helpers.close ~eps:1e-9 (norm data) (norm (Haar.transform data)))

let prop_linearity =
  Helpers.qcheck_case ~name:"transform is linear" gen_pow2_data (fun data ->
      let scaled = Haar.transform (Array.map (fun x -> 3.0 *. x) data) in
      let direct = Array.map (fun c -> 3.0 *. c) (Haar.transform data) in
      Array.for_all2 (fun a b -> Helpers.close ~eps:1e-9 a b) scaled direct)

let test_basis_orthonormal () =
  let n = 16 in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let dot = ref 0.0 in
      for pos = 0 to n - 1 do
        dot := !dot +. (Haar.basis_value ~n ~coeff:a ~pos *. Haar.basis_value ~n ~coeff:b ~pos)
      done;
      let expected = if a = b then 1.0 else 0.0 in
      Helpers.check_close ~eps:1e-9 (Printf.sprintf "dot(%d,%d)" a b) expected !dot
    done
  done

let test_basis_matches_transform () =
  (* Reconstructing from ALL coefficients via basis_value must reproduce
     the data: v_i = sum_k c_k psi_k(i). *)
  let data = [| 4.0; -2.0; 7.0; 0.0; 1.0; 1.0; 3.0; -5.0 |] in
  let c = Haar.transform data in
  let n = 8 in
  for pos = 0 to n - 1 do
    let v = ref 0.0 in
    for k = 0 to n - 1 do
      v := !v +. (c.(k) *. Haar.basis_value ~n ~coeff:k ~pos)
    done;
    Helpers.check_close "pointwise reconstruction" data.(pos) !v
  done

let prop_basis_prefix_sum =
  Helpers.qcheck_case ~name:"basis_prefix_sum equals naive partial sums"
    QCheck2.Gen.(
      let* log_n = int_range 0 5 in
      return (1 lsl log_n))
    (fun n ->
      let ok = ref true in
      for k = 0 to n - 1 do
        for p = 0 to n do
          let naive = ref 0.0 in
          for pos = 0 to p - 1 do
            naive := !naive +. Haar.basis_value ~n ~coeff:k ~pos
          done;
          if not (Helpers.close ~eps:1e-9 !naive (Haar.basis_prefix_sum ~n ~coeff:k ~prefix:p))
          then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------- Synopsis *)

let test_synopsis_all_coeffs_exact () =
  let data = [| 4.0; -2.0; 7.0; 0.0; 1.0; 1.0; 3.0; -5.0 |] in
  let s = Syn.build data ~coeffs:8 in
  Alcotest.(check (array (float 1e-9))) "exact reconstruction" data (Syn.to_series s);
  Helpers.check_close "zero sse" 0.0 (Syn.sse_against s data);
  for i = 1 to 8 do
    Helpers.check_close "point" data.(i - 1) (Syn.point_estimate s i)
  done

let test_synopsis_budget_respected () =
  let data = Array.init 64 (fun i -> Float.of_int ((i * 13) mod 29)) in
  let s = Syn.build data ~coeffs:10 in
  Alcotest.(check bool) "at most 10 stored" true (Syn.stored_coefficients s <= 10)

let prop_synopsis_range_sum_consistent =
  Helpers.qcheck_case ~name:"range_sum_estimate equals sum over to_series"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:40 () in
      let* budget = int_range 1 10 in
      return (data, budget))
    (fun (data, budget) ->
      let s = Syn.build data ~coeffs:budget in
      let series = Syn.to_series s in
      let n = Array.length data in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          let direct = Syn.range_sum_estimate s ~lo ~hi in
          let via = Helpers.naive_range_sum series lo hi in
          if not (Helpers.close ~eps:1e-6 direct via) then ok := false
        done
      done;
      !ok)

let prop_topk_is_l2_optimal_selection =
  (* Keeping the largest coefficients must never have higher SSE than any
     other subset of the same size: check against keeping the SMALLEST. *)
  Helpers.qcheck_case ~count:50 ~name:"top-k beats bottom-k in SSE" gen_pow2_data (fun data ->
      let n = Array.length data in
      if n < 4 then true
      else begin
        let budget = n / 2 in
        let top = Syn.build data ~coeffs:budget in
        (* bottom-k reconstruction: zero out the top-k coefficients *)
        let all = Haar.transform data in
        let idx = Array.init n (fun i -> i) in
        Array.sort (fun a b -> compare (Float.abs all.(a)) (Float.abs all.(b))) idx;
        let keep = Array.sub idx 0 budget in
        let sparse = Array.make n 0.0 in
        Array.iter (fun k -> sparse.(k) <- all.(k)) keep;
        let bottom_series = Haar.inverse sparse in
        let bottom_sse = Sh_util.Metrics.sse bottom_series data in
        Syn.sse_against top data <= bottom_sse +. 1e-6
      end)

let test_synopsis_non_pow2_padding () =
  let data = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let s = Syn.build data ~coeffs:8 in
  Alcotest.(check int) "length is original" 5 (Syn.length s);
  (* With a full budget the original range must still reconstruct exactly. *)
  Alcotest.(check (array (float 1e-9))) "exact on original range" data (Syn.to_series s)

let test_synopsis_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Synopsis.build: empty data") (fun () ->
      ignore (Syn.build [||] ~coeffs:1));
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Synopsis.build: coefficient budget must be >= 1") (fun () ->
      ignore (Syn.build [| 1.0 |] ~coeffs:0));
  let s = Syn.build [| 1.0; 2.0 |] ~coeffs:1 in
  Alcotest.check_raises "point oob" (Invalid_argument "Synopsis.point_estimate: index out of range")
    (fun () -> ignore (Syn.point_estimate s 3))

(* ------------------------------------------------------------------ DCT *)

module Dct = Sh_wavelet.Dct

let gen_any_data =
  QCheck2.Gen.(
    let* n = int_range 1 48 in
    let* ints = array_size (return n) (int_range (-100) 100) in
    return (Array.map Float.of_int ints))

let prop_dct_roundtrip =
  Helpers.qcheck_case ~name:"DCT inverse . transform = id" gen_any_data (fun data ->
      let back = Dct.inverse (Dct.transform data) in
      Array.for_all2 (fun a b -> Helpers.close ~eps:1e-8 a b) data back)

let prop_dct_parseval =
  Helpers.qcheck_case ~name:"DCT preserves L2 norm" gen_any_data (fun data ->
      let norm xs = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
      Helpers.close ~eps:1e-8 (norm data) (norm (Dct.transform data)))

let test_dct_basis_orthonormal () =
  let n = 12 in
  for a = 0 to n - 1 do
    for b = a to n - 1 do
      let dot = ref 0.0 in
      for pos = 0 to n - 1 do
        dot := !dot +. (Dct.basis_value ~n ~coeff:a ~pos *. Dct.basis_value ~n ~coeff:b ~pos)
      done;
      Helpers.check_close ~eps:1e-9 (Printf.sprintf "dot(%d,%d)" a b)
        (if a = b then 1.0 else 0.0)
        !dot
    done
  done

let prop_dct_basis_prefix_sum =
  Helpers.qcheck_case ~name:"DCT basis_prefix_sum equals naive partial sums"
    QCheck2.Gen.(int_range 1 24)
    (fun n ->
      let ok = ref true in
      for k = 0 to n - 1 do
        for p = 0 to n do
          let naive = ref 0.0 in
          for pos = 0 to p - 1 do
            naive := !naive +. Dct.basis_value ~n ~coeff:k ~pos
          done;
          if not (Helpers.close ~eps:1e-8 !naive (Dct.basis_prefix_sum ~n ~coeff:k ~prefix:p))
          then ok := false
        done
      done;
      !ok)

let test_dct_synopsis_exact_full_budget () =
  let data = [| 4.0; -2.0; 7.0; 0.0; 1.0 |] in
  let s = Dct.build data ~coeffs:5 in
  Array.iteri
    (fun i v -> Helpers.check_close ~eps:1e-8 "point" v (Dct.point_estimate s (i + 1)))
    data;
  Helpers.check_close ~eps:1e-6 "sse" 0.0 (Dct.sse_against s data)

let prop_dct_range_sum_consistent =
  Helpers.qcheck_case ~count:60 ~name:"DCT range_sum equals sum over to_series"
    QCheck2.Gen.(
      let* data = gen_any_data in
      let* budget = int_range 1 8 in
      return (data, budget))
    (fun (data, budget) ->
      let s = Dct.build data ~coeffs:budget in
      let series = Dct.to_series s in
      let n = Array.length data in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          if
            not
              (Helpers.close ~eps:1e-6
                 (Dct.range_sum_estimate s ~lo ~hi)
                 (Helpers.naive_range_sum series lo hi))
          then ok := false
        done
      done;
      !ok)

let test_dct_smooth_data_compresses () =
  (* a slow cosine concentrates its energy in few DCT coefficients (the
     half-sample phase offset of DCT-II spreads a little energy, so the
     criterion is relative) *)
  let n = 128 in
  let data = Array.init n (fun i -> 100.0 *. cos (2.0 *. Float.pi *. Float.of_int i /. Float.of_int n)) in
  let energy = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 data in
  let s = Dct.build data ~coeffs:8 in
  Alcotest.(check bool) "under 1% residual energy with 8 coeffs" true
    (Dct.sse_against s data < 0.01 *. energy)

(* ------------------------------------------------------------ Streaming *)

module Str = Sh_wavelet.Streaming

let test_streaming_exact_with_full_budget () =
  List.iter
    (fun n ->
      let data = Array.init n (fun i -> Float.of_int (((i * 37) mod 41) - 20)) in
      let s = Str.create ~budget:(max 1 n) in
      Array.iter (Str.push s) data;
      Alcotest.(check int) "count" n (Str.count s);
      Array.iteri
        (fun i v -> Helpers.check_close ~eps:1e-9 (Printf.sprintf "n=%d i=%d" n i) v
            (Str.point_estimate s (i + 1)))
        data)
    [ 1; 2; 3; 7; 8; 13; 16; 33 ]

let test_streaming_step_function_cheap () =
  (* one dyadic step: a single detail coefficient suffices *)
  let data = Array.append (Array.make 8 5.0) (Array.make 8 9.0) in
  let s = Str.create ~budget:1 in
  Array.iter (Str.push s) data;
  Array.iteri
    (fun i v -> Helpers.check_close "exact with budget 1" v (Str.point_estimate s (i + 1)))
    data

let prop_streaming_range_sum_consistent =
  Helpers.qcheck_case ~name:"streaming range_sum equals sum over to_series"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:50 () in
      let* budget = int_range 1 10 in
      return (data, budget))
    (fun (data, budget) ->
      let s = Str.create ~budget in
      Array.iter (Str.push s) data;
      let series = Str.to_series s in
      let n = Array.length data in
      let ok = ref true in
      for lo = 1 to n do
        for hi = lo to n do
          if
            not
              (Helpers.close ~eps:1e-6
                 (Str.range_sum_estimate s ~lo ~hi)
                 (Helpers.naive_range_sum series lo hi))
          then ok := false
        done
      done;
      !ok)

let prop_streaming_budget_respected =
  Helpers.qcheck_case ~name:"streaming never stores more than the budget"
    QCheck2.Gen.(
      let* data = Helpers.gen_data ~min_len:1 ~max_len:200 () in
      let* budget = int_range 1 8 in
      return (data, budget))
    (fun (data, budget) ->
      let s = Str.create ~budget in
      Array.iter (Str.push s) data;
      Str.stored_coefficients s <= budget)

let test_streaming_bigger_budget_better () =
  let rng = Helpers.rng ~seed:55 in
  let data = Array.init 256 (fun _ -> Float.of_int (Sh_util.Rng.int rng 1000)) in
  let sse budget =
    let s = Str.create ~budget in
    Array.iter (Str.push s) data;
    Sh_util.Metrics.sse (Str.to_series s) data
  in
  Alcotest.(check bool) "budget 64 beats budget 2" true (sse 64 < sse 2);
  Helpers.check_close ~eps:1e-6 "budget 256 exact" 0.0 (sse 256)

let test_streaming_validation () =
  Alcotest.check_raises "budget" (Invalid_argument "Streaming.create: budget must be >= 1")
    (fun () -> ignore (Str.create ~budget:0));
  let s = Str.create ~budget:4 in
  Alcotest.check_raises "nan" (Invalid_argument "Streaming.push: non-finite value") (fun () ->
      Str.push s Float.nan);
  Str.push s 1.0;
  Alcotest.check_raises "point oob" (Invalid_argument "Streaming.point_estimate: index out of range")
    (fun () -> ignore (Str.point_estimate s 2))

let () =
  Alcotest.run "sh_wavelet"
    [
      ( "haar",
        [
          Alcotest.test_case "pow2 helpers" `Quick test_pow2_helpers;
          Alcotest.test_case "known transform" `Quick test_transform_known;
          Alcotest.test_case "constant data" `Quick test_transform_constant;
          Alcotest.test_case "rejects non-pow2" `Quick test_transform_rejects_non_pow2;
          Alcotest.test_case "basis orthonormal" `Quick test_basis_orthonormal;
          Alcotest.test_case "basis matches transform" `Quick test_basis_matches_transform;
          prop_roundtrip;
          prop_parseval;
          prop_linearity;
          prop_basis_prefix_sum;
        ] );
      ( "synopsis",
        [
          Alcotest.test_case "all coeffs exact" `Quick test_synopsis_all_coeffs_exact;
          Alcotest.test_case "budget respected" `Quick test_synopsis_budget_respected;
          Alcotest.test_case "non-pow2 padding" `Quick test_synopsis_non_pow2_padding;
          Alcotest.test_case "validation" `Quick test_synopsis_validation;
          prop_synopsis_range_sum_consistent;
          prop_topk_is_l2_optimal_selection;
        ] );
      ( "dct",
        [
          Alcotest.test_case "basis orthonormal" `Quick test_dct_basis_orthonormal;
          Alcotest.test_case "full budget exact" `Quick test_dct_synopsis_exact_full_budget;
          Alcotest.test_case "smooth compresses" `Quick test_dct_smooth_data_compresses;
          prop_dct_roundtrip;
          prop_dct_parseval;
          prop_dct_basis_prefix_sum;
          prop_dct_range_sum_consistent;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "exact with full budget" `Quick test_streaming_exact_with_full_budget;
          Alcotest.test_case "dyadic step" `Quick test_streaming_step_function_cheap;
          Alcotest.test_case "bigger budget better" `Quick test_streaming_bigger_budget_better;
          Alcotest.test_case "validation" `Quick test_streaming_validation;
          prop_streaming_range_sum_consistent;
          prop_streaming_budget_respected;
        ] );
    ]
