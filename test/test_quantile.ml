module Gk = Sh_quantile.Gk
module Reservoir = Sh_quantile.Reservoir
module Rng = Sh_util.Rng

(* True rank of the answer among the data (count of values <= answer). *)
let true_rank data v = Array.fold_left (fun acc x -> if x <= v then acc + 1 else acc) 0 data

let count_eq data v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 data

let check_rank_guarantee ~eps data =
  let g = Gk.create ~epsilon:eps in
  Array.iter (Gk.insert g) data;
  let n = Array.length data in
  let allow = (eps *. Float.of_int n) +. 1.0 in
  List.for_all
    (fun phi ->
      let v = Gk.quantile g phi in
      let target = Float.of_int (max 1 (int_of_float (ceil (phi *. Float.of_int n)))) in
      let r = Float.of_int (true_rank data v) in
      (* v's rank interval must intersect [target - allow, target + allow]:
         since values can repeat, accept if the rank of v is within the
         allowance of the target. *)
      Float.abs (r -. target) <= allow +. Float.of_int (count_eq data v))
    [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ]

let test_gk_validation () =
  Alcotest.check_raises "epsilon too big" (Invalid_argument "Gk.create: epsilon must be in (0, 1)")
    (fun () -> ignore (Gk.create ~epsilon:1.0));
  let g = Gk.create ~epsilon:0.1 in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Gk.quantile: empty summary") (fun () ->
      ignore (Gk.quantile g 0.5));
  Gk.insert g 1.0;
  Alcotest.check_raises "phi oob" (Invalid_argument "Gk.quantile: phi out of [0, 1]") (fun () ->
      ignore (Gk.quantile g 1.5))

let test_gk_exact_small () =
  let g = Gk.create ~epsilon:0.05 in
  List.iter (Gk.insert g) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 5 (Gk.count g);
  Helpers.check_close "min" 1.0 (Gk.quantile g 0.0);
  Helpers.check_close "max" 5.0 (Gk.quantile g 1.0);
  Helpers.check_close "median" 3.0 (Gk.quantile g 0.5)

let test_gk_sorted_stream () =
  let data = Array.init 5000 Float.of_int in
  Alcotest.(check bool) "guarantee on sorted data" true (check_rank_guarantee ~eps:0.02 data)

let test_gk_reverse_stream () =
  let data = Array.init 5000 (fun i -> Float.of_int (5000 - i)) in
  Alcotest.(check bool) "guarantee on reverse-sorted data" true (check_rank_guarantee ~eps:0.02 data)

let prop_gk_rank_guarantee =
  Helpers.qcheck_case ~count:25 ~name:"GK epsilon-rank guarantee on random streams"
    QCheck2.Gen.(
      let* n = int_range 50 2000 in
      let* ints = array_size (return n) (int_range 0 10_000) in
      let* eps = oneofl [ 0.01; 0.05; 0.1 ] in
      return (Array.map Float.of_int ints, eps))
    (fun (data, eps) -> check_rank_guarantee ~eps data)

let test_gk_space_sublinear () =
  let g = Gk.create ~epsilon:0.01 in
  let rng = Rng.create ~seed:21 in
  let n = 100_000 in
  for _ = 1 to n do
    Gk.insert g (Rng.float rng 1.0)
  done;
  (* Space O((1/eps) log (eps n)); generous constant. *)
  let bound = int_of_float (30.0 /. 0.01) in
  Alcotest.(check bool)
    (Printf.sprintf "summary size %d stays far below n" (Gk.size g))
    true
    (Gk.size g < bound)

let test_gk_rank_bounds () =
  let g = Gk.create ~epsilon:0.1 in
  Array.iter (Gk.insert g) (Array.init 100 Float.of_int);
  let lo, hi = Gk.rank_bounds g 50.0 in
  Alcotest.(check bool) "bounds order" true (lo <= hi);
  Alcotest.(check bool) "enclose true rank 51" true (lo <= 51 + 10 && hi >= 51 - 10)

(* ------------------------------------------------------------------ MRL *)

module Mrl = Sh_quantile.Mrl

let test_mrl_exact_small () =
  let m = Mrl.create ~buffer_size:16 in
  List.iter (Mrl.insert m) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 5 (Mrl.count m);
  Helpers.check_close "median exact while unbuffered" 3.0 (Mrl.quantile m 0.5);
  Helpers.check_close "min" 1.0 (Mrl.quantile m 0.0);
  Helpers.check_close "max" 5.0 (Mrl.quantile m 1.0)

let mrl_rank_check ~data ~buffer_size =
  let m = Mrl.create ~buffer_size in
  Array.iter (Mrl.insert m) data;
  let n = Array.length data in
  List.for_all
    (fun phi ->
      let v = Mrl.quantile m phi in
      let target = Float.of_int (max 1 (int_of_float (ceil (phi *. Float.of_int n)))) in
      let r = Float.of_int (true_rank data v) in
      (* allow the structure's own error bound, pending-buffer slack, and
         value multiplicity *)
      Float.abs (r -. target)
      <= Float.of_int (Mrl.rank_error_bound m + buffer_size + count_eq data v + 1))
    [ 0.0; 0.1; 0.5; 0.9; 1.0 ]

let test_mrl_rank_bound_random () =
  let rng = Rng.create ~seed:41 in
  let data = Array.init 20_000 (fun _ -> Rng.float rng 1e6) in
  Alcotest.(check bool) "rank error within bound" true (mrl_rank_check ~data ~buffer_size:256)

let test_mrl_rank_bound_sorted () =
  let data = Array.init 10_000 Float.of_int in
  Alcotest.(check bool) "sorted stream" true (mrl_rank_check ~data ~buffer_size:128)

let test_mrl_space_sublinear () =
  let m = Mrl.create ~buffer_size:128 in
  let rng = Rng.create ~seed:42 in
  for _ = 1 to 100_000 do
    Mrl.insert m (Rng.float rng 1.0)
  done;
  (* ~ buffer_size x log2(n / buffer_size) *)
  Alcotest.(check bool)
    (Printf.sprintf "size %d well below n" (Mrl.size m))
    true
    (Mrl.size m <= 128 * 16)

let test_mrl_validation () =
  Alcotest.check_raises "buffer size" (Invalid_argument "Mrl.create: buffer_size must be >= 2")
    (fun () -> ignore (Mrl.create ~buffer_size:1));
  let m = Mrl.create ~buffer_size:4 in
  Alcotest.check_raises "empty" (Invalid_argument "Mrl.quantile: empty summary") (fun () ->
      ignore (Mrl.quantile m 0.5));
  Alcotest.check_raises "nan" (Invalid_argument "Mrl.insert: non-finite value") (fun () ->
      Mrl.insert m Float.nan)

let prop_mrl_monotone_in_phi =
  Helpers.qcheck_case ~count:30 ~name:"MRL quantiles are monotone in phi"
    QCheck2.Gen.(
      let* n = int_range 10 2000 in
      let* ints = array_size (return n) (int_range 0 1000) in
      return (Array.map Float.of_int ints))
    (fun data ->
      let m = Mrl.create ~buffer_size:32 in
      Array.iter (Mrl.insert m) data;
      let qs = List.map (Mrl.quantile m) [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
      let rec mono = function a :: b :: rest -> a <= b && mono (b :: rest) | _ -> true in
      mono qs)

(* ------------------------------------------------------------ Reservoir *)

let test_reservoir_small_stream () =
  let r = Reservoir.create (Rng.create ~seed:1) ~size:10 in
  List.iter (Reservoir.add r) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check int) "seen" 3 (Reservoir.seen r);
  Alcotest.(check int) "sample size" 3 (Array.length (Reservoir.sample r));
  Helpers.check_close "mean exact when sample = stream" 2.0 (Reservoir.mean r);
  Helpers.check_close "sum estimate exact" 6.0 (Reservoir.sum_estimate r)

let test_reservoir_fixed_size () =
  let r = Reservoir.create (Rng.create ~seed:2) ~size:50 in
  for i = 1 to 10_000 do
    Reservoir.add r (Float.of_int i)
  done;
  Alcotest.(check int) "sample capped" 50 (Array.length (Reservoir.sample r))

let test_reservoir_unbiased_mean () =
  (* Average the estimator over many independent reservoirs. *)
  let trials = 300 in
  let acc = ref 0.0 in
  for t = 1 to trials do
    let r = Reservoir.create (Rng.create ~seed:t) ~size:32 in
    for i = 1 to 1000 do
      Reservoir.add r (Float.of_int (i mod 100))
    done;
    acc := !acc +. Reservoir.mean r
  done;
  let avg = !acc /. Float.of_int trials in
  (* true mean of (i mod 100) over 1..1000 is 49.5 *)
  Alcotest.(check bool) "unbiased within noise" true (Float.abs (avg -. 49.5) < 2.0)

let test_reservoir_membership () =
  let r = Reservoir.create (Rng.create ~seed:3) ~size:5 in
  for i = 1 to 1000 do
    Reservoir.add r (Float.of_int i)
  done;
  Alcotest.(check bool) "samples come from the stream" true
    (Array.for_all (fun v -> v >= 1.0 && v <= 1000.0 && Float.is_integer v) (Reservoir.sample r))

let test_reservoir_validation () =
  Alcotest.check_raises "bad size" (Invalid_argument "Reservoir.create: size must be >= 1")
    (fun () -> ignore (Reservoir.create (Rng.create ~seed:1) ~size:0));
  let r = Reservoir.create (Rng.create ~seed:1) ~size:3 in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Reservoir.quantile: empty reservoir")
    (fun () -> ignore (Reservoir.quantile r 0.5))

let () =
  Alcotest.run "sh_quantile"
    [
      ( "gk",
        [
          Alcotest.test_case "validation" `Quick test_gk_validation;
          Alcotest.test_case "exact small" `Quick test_gk_exact_small;
          Alcotest.test_case "sorted stream" `Quick test_gk_sorted_stream;
          Alcotest.test_case "reverse stream" `Quick test_gk_reverse_stream;
          Alcotest.test_case "space sublinear" `Quick test_gk_space_sublinear;
          Alcotest.test_case "rank bounds" `Quick test_gk_rank_bounds;
          prop_gk_rank_guarantee;
        ] );
      ( "mrl",
        [
          Alcotest.test_case "exact small" `Quick test_mrl_exact_small;
          Alcotest.test_case "rank bound random" `Quick test_mrl_rank_bound_random;
          Alcotest.test_case "rank bound sorted" `Quick test_mrl_rank_bound_sorted;
          Alcotest.test_case "space sublinear" `Quick test_mrl_space_sublinear;
          Alcotest.test_case "validation" `Quick test_mrl_validation;
          prop_mrl_monotone_in_phi;
        ] );
      ( "reservoir",
        [
          Alcotest.test_case "small stream" `Quick test_reservoir_small_stream;
          Alcotest.test_case "fixed size" `Quick test_reservoir_fixed_size;
          Alcotest.test_case "unbiased mean" `Quick test_reservoir_unbiased_mean;
          Alcotest.test_case "membership" `Quick test_reservoir_membership;
          Alcotest.test_case "validation" `Quick test_reservoir_validation;
        ] );
    ]
